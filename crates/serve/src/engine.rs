//! The online imputation engine: a warm frozen model plus the mutable serving
//! state (observed values, imputation cache, per-window freshness).
//!
//! ## Consistency model
//!
//! The engine keeps a full-tensor imputation cache guarded by one mutex, with
//! a per-`(series, window)` freshness bit. Queries serve fresh windows straight
//! from the cache; stale windows covering missing entries are recomputed on
//! demand — coalesced across a batch so overlapping requests share one forward
//! pass per window ([`ImputationEngine::query_batch`]).
//!
//! ## Sharded reads: the lock-free warm path
//!
//! The core mutex serializes *mutations and recomputes* — DeepMVI's forward
//! pass reads every series (the kernel regression samples sibling values
//! pointwise), so a write is inherently cross-series work and needs one
//! consistent multi-series view. Reads do not: every mutation **publishes**,
//! before it releases the core lock, an immutable per-series snapshot of the
//! retained imputed values plus freshness/degradation bits into a lock-free
//! cell (`crate::shard`). A query whose overlapped windows are all fresh is
//! answered entirely from that snapshot — no mutex, no blocking of appends
//! to other series, no blocking of other warm readers. Stale windows and
//! invalid ranges fall through to the locked path, which recomputes, answers
//! and republishes. Health counters are hash-sharded behind shard-local
//! locks with an explicit multi-shard ordering protocol (ascending shard
//! index, all guards held together) so [`ImputationEngine::health`] is a
//! consistent point-in-time aggregate.
//!
//! **Linearizability**: a warm read linearizes at its single atomic snapshot
//! load; since publication happens before a mutation returns, any read
//! issued after a mutation completed observes it (reads-see-writes), and
//! single-threaded runs are bitwise identical with the warm path on or off
//! ([`ImputationEngine::set_warm_reads`]) — `tests/serve_concurrency.rs`
//! holds both as properties under stress.
//!
//! [`ImputationEngine::append`] records newly arrived values at a series'
//! write watermark and re-imputes only the **affected tail windows** instead of
//! the full tensor:
//!
//! * the appended series: every window from one window before the append
//!   onwards (the fine-grained local mean of §4.1.1 reaches `w` steps across a
//!   window boundary, so re-imputation starts one window early);
//! * sibling series: only windows overlapping the appended range — the kernel
//!   regression (§4.2) reads sibling values pointwise at the imputed position,
//!   and the temporal transformer and local mean never cross series.
//!
//! Windows of the appended series *before* the recomputed tail are marked
//! stale rather than recomputed: their attention context (up to `ctx_windows`
//! windows) may span the append, so they heal lazily on the next query that
//! touches them. Values recomputed by `append` are exactly what a full batch
//! re-impute over the current state would produce — the integration tests
//! assert equality to 1e-9.
//!
//! ## Growable series capacity
//!
//! Series are **not** capped at the length the model was trained on. The
//! engine tracks a *live* length (the [`mvi_data::windows::WindowGrid`] grows
//! with it) and an internal storage *capacity*: an append running past the
//! live end extends the live length, and when it also runs past capacity the
//! backing [`ObservedDataset`]/[`Tensor`] grow geometrically (≥1.5×,
//! window-aligned) via their `extend_time` mutators, so the per-appended-value
//! storage cost stays amortized O(1). The slack between live length and
//! capacity is entirely missing/unobserved and is never visible through the
//! API: queries validate against the live length, and
//! [`ImputationEngine::observed`]/[`ImputationEngine::cached_values`] return
//! the live prefix.
//!
//! Windows past the trained length are evaluated by the frozen model's
//! *rolling* temporal context (the attention horizon slides to the most recent
//! trained-length span of windows, with horizon-relative positional
//! encodings), so a grown engine still matches a batch re-impute of the
//! equivalently extended dataset to 1e-9 — see `deepmvi::FrozenModel::t_len`.
//!
//! ## Bounded memory: the retention ring
//!
//! An unbounded stream grows resident storage forever. An engine built with
//! [`ImputationEngine::with_retention`] instead keeps a **retention ring**: a
//! configurable number of the *newest* time steps stays resident, and an
//! append that would run past the ring capacity first **evicts the oldest
//! window-aligned span**. Logical time keeps advancing — window indices,
//! watermarks, query ranges and reports all stay absolute — but physical
//! storage is a bounded buffer whose origin ([`ImputationEngine::retained_start`])
//! slides forward with the stream:
//!
//! * storage capacity never exceeds the **ring cap**
//!   `w · (⌈retention_len / w⌉ + 1)` (one window of slack keeps the retained
//!   span ≥ `retention_len` through window-aligned eviction), and the
//!   retained span always holds at least the newest `retention_len` steps;
//! * queries (and backfills) touching evicted time fail with the typed
//!   [`ServeError::Evicted`] instead of silently serving wrong data;
//! * eviction invalidates only what it actually changes: the evicted windows
//!   leave with their storage, and the first trained-horizon's worth of
//!   retained windows are marked stale because their rolling attention
//!   context (and, for the origin window, the ±`w` fine-grained reach) no
//!   longer sees the evicted data. Deeper retained windows keep their cache
//!   — their context is entirely inside the ring, so their imputations are
//!   unchanged.
//!
//! The consistency oracle under retention is the **truncated batch
//! re-impute**: the engine serves exactly what `FrozenModel::impute` over the
//! retained span (as a standalone dataset — [`ImputationEngine::observed`])
//! produces, to 1e-9 (bitwise at a fixed thread count). Windows whose rolling
//! horizon lies entirely inside the ring additionally match the *unbounded*
//! engine bitwise, because the horizon-relative forward pass sees identical
//! inputs either way. `tests/serve_retention.rs` holds both as properties.
//!
//! ## Watermarks and interior gaps
//!
//! Each series has one **write watermark**: the position just past the last
//! observed entry at construction, advanced by every append. `append` is the
//! *streaming* mutation — it always records at the watermark. A series with a
//! hidden interior range followed by observed data starts with its watermark
//! past the gap, so late-arriving data for the interior cannot enter through
//! `append`; that is what [`ImputationEngine::fill_range`] is for — it records
//! values at an explicit in-range position (backfill), re-imputes the windows
//! within local (±`w`) reach of the filled range plus sibling overlaps, and
//! invalidates the rest of the series for lazy healing, exactly mirroring the
//! append consistency contract.

use crate::shard::{SeriesSnap, ShardSet};
use deepmvi::{FrozenModel, ScratchPool, WindowQuery};
use mvi_data::dataset::ObservedDataset;
use mvi_data::windows::WindowGrid;
use mvi_tensor::Tensor;
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, TryLockError};

/// Errors produced by the serving layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// Model/dataset geometry mismatch (wrong dims, series length, weights).
    Geometry(String),
    /// An `append`/`fill_range` payload carries NaN/±inf. Rejected **before
    /// anything touches storage**: the whole mutation is refused, the
    /// engine's observed state, cache and watermarks are untouched.
    NonFiniteInput {
        /// The series the mutation targeted.
        s: usize,
        /// Index of the first non-finite value *within the submitted slice*.
        offset: usize,
    },
    /// The request's micro-batch panicked inside the executor. The worker
    /// survives (the panic is caught and the engine state heals itself), so
    /// this is transient: the same request may well succeed on retry.
    Panicked,
    /// The batcher's bounded pending queue is full — backpressure instead of
    /// unbounded buffering. Retry after a backoff.
    Overloaded {
        /// The configured queue capacity that was exhausted.
        capacity: usize,
    },
    /// The request's configured deadline elapsed before a reply arrived
    /// (either it expired while queued, or the evaluation was stuck). The
    /// client is released; the batch may still complete in the background.
    DeadlineExceeded,
    /// A durable snapshot failed an integrity check: the named section's
    /// bytes do not match their recorded checksum (bit rot, torn write,
    /// truncation). The snapshot must not be served; fall back to an older
    /// one ([`crate::ImputationEngine::restore_with_fallback`]).
    Corrupt {
        /// Which section failed (`"header"`, `"digest"`, `"body"`,
        /// `"params/<name>"`, `"cache.values"`, …).
        section: String,
        /// What exactly mismatched.
        detail: String,
    },
    /// Series id outside the dataset.
    Series {
        /// The requested series id.
        s: usize,
        /// How many series the dataset holds.
        n_series: usize,
    },
    /// Time range outside the live series length or inverted.
    Range {
        /// Requested range start (inclusive).
        start: usize,
        /// Requested range end (exclusive).
        end: usize,
        /// Live series length the range was validated against.
        t_len: usize,
    },
    /// The range touches time the retention ring has already evicted: the
    /// data is gone, so the engine refuses rather than serve silently-wrong
    /// values. Only engines built with [`ImputationEngine::with_retention`]
    /// produce this.
    Evicted {
        /// Requested range start (inclusive).
        start: usize,
        /// Requested range end (exclusive).
        end: usize,
        /// Oldest retained time position; everything before it is evicted.
        retained_start: usize,
    },
    /// A restored snapshot carries NaN/±inf weights; serving them would
    /// silently answer every query with NaN.
    NonFiniteWeights {
        /// Name of the offending parameter tensor.
        param: String,
    },
    /// Snapshot parse/restore failure.
    Snapshot(String),
    /// The serving executor shut down before answering (transient: the
    /// request itself may be perfectly valid). This is the **deliberate**
    /// outcome: the batcher drained its queue and answered every pending
    /// request with this typed reply.
    Shutdown,
    /// The executor's reply channel disconnected **without** a typed answer —
    /// the crash-shaped counterpart of [`ServeError::Shutdown`]: the worker
    /// vanished (or the submission raced the final shutdown drain) and this
    /// request's reply was lost rather than answered. Whether the evaluation
    /// ran is unknown, so callers must not assume either way.
    Disconnected,
    /// The tenant id is not registered in the [`crate::registry::ModelRegistry`]
    /// — neither resident nor spilled to disk. Retrying the identical request
    /// can never succeed until someone registers the tenant.
    UnknownTenant {
        /// The tenant id the request named.
        tenant: String,
    },
    /// Another caller is loading this tenant's snapshot from disk right now.
    /// The request was **not** executed, so it is safe to retry after a
    /// short backoff — by then the load has usually finished.
    TenantLoading {
        /// The tenant id whose snapshot is mid-load.
        tenant: String,
    },
    /// The registry cannot make room for this tenant: every resident slot is
    /// pinned by an in-flight load (or the capacity is zero), so nothing can
    /// be evicted. Unlike [`ServeError::TenantLoading`] this does not resolve
    /// on a retry timescale without other traffic finishing, so it is not
    /// flagged retry-safe on the wire.
    RegistryFull {
        /// The configured resident capacity that was exhausted.
        capacity: usize,
    },
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Geometry(msg) => write!(f, "geometry mismatch: {msg}"),
            ServeError::NonFiniteInput { s, offset } => {
                write!(
                    f,
                    "series {s}: input value at offset {offset} is not finite (NaN/inf never \
                     enters storage)"
                )
            }
            ServeError::Panicked => {
                write!(f, "the request's micro-batch panicked in the executor (transient)")
            }
            ServeError::Overloaded { capacity } => {
                write!(f, "serving queue full ({capacity} pending requests); retry with backoff")
            }
            ServeError::DeadlineExceeded => {
                write!(f, "request deadline elapsed before the batch replied")
            }
            ServeError::Corrupt { section, detail } => {
                write!(f, "snapshot corrupt in section `{section}`: {detail}")
            }
            ServeError::Series { s, n_series } => {
                write!(f, "series {s} out of range (dataset has {n_series})")
            }
            ServeError::Range { start, end, t_len } => {
                write!(f, "range {start}..{end} invalid for live series length {t_len}")
            }
            ServeError::Evicted { start, end, retained_start } => {
                write!(
                    f,
                    "range {start}..{end} touches evicted time (the retention ring starts at \
                     {retained_start})"
                )
            }
            ServeError::NonFiniteWeights { param } => {
                write!(f, "snapshot parameter `{param}` contains non-finite weights")
            }
            ServeError::Snapshot(msg) => write!(f, "snapshot error: {msg}"),
            ServeError::Shutdown => write!(f, "serving executor shut down before answering"),
            ServeError::Disconnected => {
                write!(f, "serving executor disconnected without answering (reply lost)")
            }
            ServeError::UnknownTenant { tenant } => {
                write!(f, "tenant `{tenant}` is not registered")
            }
            ServeError::TenantLoading { tenant } => {
                write!(f, "tenant `{tenant}` is loading its snapshot; retry shortly")
            }
            ServeError::RegistryFull { capacity } => {
                write!(f, "model registry is full ({capacity} resident slots, none evictable)")
            }
        }
    }
}

impl std::error::Error for ServeError {}

/// Limits on what an incoming observation is allowed to look like. Values
/// violating a guard are **quarantined**: the mutation succeeds, the stream
/// keeps advancing, but the flagged value is recorded only in the health
/// counters — it never enters the observed state, so it can never reach a
/// forward pass or be served back as truth. The position stays missing and is
/// imputed like any other gap.
///
/// Non-finite values are rejected harder — the whole mutation fails with
/// [`ServeError::NonFiniteInput`] before anything is recorded — because a NaN
/// in a payload is a client bug, while an absurd-but-finite value is what a
/// glitching sensor emits (the messy streams DeepMVI is built for).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ValueGuard {
    /// Quarantine values with `|v| > abs_max` (`None` = no absolute bound).
    pub abs_max: Option<f64>,
    /// Quarantine values jumping more than this from the reference level: the
    /// previous accepted value of the same mutation, or the nearest earlier
    /// observed value in the retained window (`None` = no jump bound; values
    /// with no reference in reach are never jump-quarantined).
    pub max_jump: Option<f64>,
}

impl ValueGuard {
    /// Whether `v` violates this guard relative to the reference level
    /// `prev` (the nearest earlier accepted/observed value, if any).
    fn quarantines(&self, v: f64, prev: Option<f64>) -> bool {
        if self.abs_max.is_some_and(|m| v.abs() > m) {
            return true;
        }
        match (self.max_jump, prev) {
            (Some(j), Some(p)) => (v - p).abs() > j,
            _ => false,
        }
    }
}

/// One range answer plus its serving-quality flag (see
/// [`ImputationEngine::query_batch_flagged`]).
#[derive(Clone, Debug, PartialEq)]
pub struct ImputeResponse {
    /// The fully-imputed values of the requested range (observed entries pass
    /// through, missing entries are imputed).
    pub values: Vec<f64>,
    /// `true` when any window overlapping the range is currently serving the
    /// **mean-baseline fallback** because the model's forward output for it
    /// was non-finite (see the output guard in the module docs). The values
    /// are still finite and safe to display, but they carry no model signal;
    /// the window heals on its next successful recompute.
    pub degraded: bool,
}

/// Point-in-time fault/degradation counters — the serving health surface
/// ([`ImputationEngine::health`]). Everything here is monotonic except
/// `degraded_windows`, which is the *current* number of windows serving the
/// baseline fallback.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct HealthReport {
    /// Values quarantined by the [`ValueGuard`], per series.
    pub quarantined_by_series: Vec<u64>,
    /// Total quarantined values across all series.
    pub quarantined: u64,
    /// Mutations rejected outright for carrying NaN/±inf
    /// ([`ServeError::NonFiniteInput`]).
    pub nonfinite_input_rejections: u64,
    /// Times a window's forward output came back non-finite and the window
    /// degraded to the mean baseline (monotonic; one count per event).
    pub degraded_events: u64,
    /// Windows currently serving the mean-baseline fallback (`series ×
    /// window` pairs; shrinks as degraded windows heal).
    pub degraded_windows: u64,
    /// Times the engine recovered its state lock from a poisoned mutex (a
    /// panic unwound through a serving call). Recovery conservatively marks
    /// every window stale, so correctness self-heals at recompute cost.
    pub poison_recoveries: u64,
}

/// One imputation request: the fully-imputed values of `[start, end)` in
/// series `s` (observed entries pass through, missing entries are imputed).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ImputeRequest {
    /// Flat series id.
    pub s: usize,
    /// Range start (inclusive).
    pub start: usize,
    /// Range end (exclusive).
    pub end: usize,
}

/// What one [`ImputationEngine::append`] or [`ImputationEngine::fill_range`]
/// did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AppendReport {
    /// The time range the new values were recorded into.
    pub recorded: (usize, usize),
    /// Windows re-imputed eagerly (local reach of the record + sibling
    /// overlaps).
    pub windows_recomputed: usize,
    /// Missing positions whose cached imputation was refreshed.
    pub positions_refreshed: usize,
    /// Windows of the recorded series marked stale for lazy recomputation.
    pub windows_invalidated: usize,
    /// Values the [`ValueGuard`] quarantined out of this mutation: they were
    /// observed but never recorded, their positions stay missing (and are
    /// imputed), and the per-series health counters account for them.
    pub values_quarantined: usize,
    /// Live series length after the mutation (appends may grow it past the
    /// trained length; backfills never do).
    pub live_len: usize,
    /// Oldest retained time position after the mutation (`0` on unbounded
    /// engines; advances when an append pushes the retention ring forward).
    /// If the mutation evicted, `recorded.0` may exceed the pre-append
    /// watermark: values destined for time the eviction consumed are dropped
    /// immediately rather than recorded.
    pub retained_start: usize,
}

/// Monotonic serving counters (lock-free reads; see
/// [`ImputationEngine::stats`]).
#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    batches: AtomicU64,
    windows_computed: AtomicU64,
    window_hits: AtomicU64,
    appends: AtomicU64,
    values_appended: AtomicU64,
    backfills: AtomicU64,
    values_backfilled: AtomicU64,
    evictions: AtomicU64,
    steps_evicted: AtomicU64,
    /// Nanoseconds serving calls spent *blocked* on the core state lock
    /// (contended acquisitions only; an uncontended `try_lock` costs no
    /// clock read). The blocked-time probe of `serve_bench --only=sharded`
    /// asserts warm reads keep this flat while appends run.
    lock_wait_nanos: AtomicU64,
}

/// Point-in-time copy of the engine counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Requests served (each element of a batch counts once).
    pub requests: u64,
    /// Micro-batches executed (a single `query` counts as a batch of one).
    pub batches: u64,
    /// Window forward passes actually evaluated.
    pub windows_computed: u64,
    /// Windows with missing entries served from the warm cache without a
    /// forward pass (fully observed windows never count — they need neither
    /// cache nor compute).
    pub window_hits: u64,
    /// Successful appends.
    pub appends: u64,
    /// Total values recorded by appends.
    pub values_appended: u64,
    /// Successful interior backfills ([`ImputationEngine::fill_range`]).
    pub backfills: u64,
    /// Total values recorded by backfills.
    pub values_backfilled: u64,
    /// Retention-ring evictions (always `0` on unbounded engines).
    pub evictions: u64,
    /// Total time steps evicted from the front of the ring, summed over all
    /// evictions (per series; multiply by the series count for cell counts).
    pub steps_evicted: u64,
}

/// The validated warm state the snapshot layer hands to
/// [`ImputationEngine::from_parts`] on a warm restart: physical storage
/// (`obs`/`imputed` with time `0` = `retained_start`) plus the ring/serving
/// bookkeeping.
pub(crate) struct RestoredParts {
    pub obs: ObservedDataset,
    pub imputed: Tensor,
    pub fresh: Vec<Vec<bool>>,
    pub watermark: Vec<usize>,
    pub retained_start: usize,
    pub live_t_len: usize,
    pub retention: Option<usize>,
}

/// Mutable serving state, guarded by the engine mutex.
///
/// Time coordinates come in two flavours here:
///
/// * **logical** — absolute stream time, what the public API speaks. The
///   grid, watermarks, request ranges and reports are all logical.
/// * **physical** — offsets into the bounded storage buffers (`obs`,
///   `imputed`). Physical `0` is the ring origin `grid.origin()`, so
///   `physical = logical - origin`; with no retention configured the origin
///   stays `0` and the two coincide. Because the origin is window-aligned, a
///   retained logical window's storage slot ([`WindowGrid::slot`]) equals its
///   window index on the grid of the physical buffer viewed standalone —
///   which is exactly the grid the frozen model evaluates, so
///   [`deepmvi::WindowQuery`] is issued in physical coordinates.
struct EngineState {
    /// Observed values/mask at storage *capacity*, physical coordinates;
    /// everything in `[grid.retained_len(), obs.t_len())` is missing by
    /// construction.
    obs: ObservedDataset,
    /// The live window grid (logical): `grid.t_len()` is the live series
    /// length, `grid.origin()` the retention-ring origin.
    grid: WindowGrid,
    /// Full-tensor cache at storage capacity (physical): observed values +
    /// the latest imputations.
    imputed: Tensor,
    /// Freshness per series, one flag per retained window, indexed by storage
    /// slot ([`WindowGrid::slot`]).
    fresh: Vec<Vec<bool>>,
    /// Degradation per series/slot, parallel to `fresh`: `true` while the
    /// cached values of the window are the **mean-baseline fallback** (its
    /// forward output was non-finite). Cleared by the next successful
    /// recompute; evicted/grown alongside `fresh`.
    degraded: Vec<Vec<bool>>,
    /// The configured input guard, if any
    /// ([`ImputationEngine::set_value_guard`]).
    guard: Option<ValueGuard>,
    /// Fault-injection hook ([`ImputationEngine::set_eval_hook`]): run on
    /// every window-batch result before the output guard inspects it.
    eval_hook: Option<EvalHook>,
    /// Per-series write watermark (logical): where the next append lands
    /// (one past the last observed entry, never before the ring origin).
    watermark: Vec<usize>,
}

impl EngineState {
    /// Live series length (logical end of the stream; capacity slack
    /// excluded).
    fn live_t(&self) -> usize {
        self.grid.t_len()
    }

    /// The ring origin: oldest retained logical time (`0` when unbounded).
    fn base(&self) -> usize {
        self.grid.origin()
    }

    /// The mean-baseline fallback level for series `s` — what a degraded
    /// window serves instead of a non-finite forward output: the mean of the
    /// series' retained observed values, else the global retained observed
    /// mean, else `0.0`. Always finite and never model-derived, so a poisoned
    /// forward pass cannot leak through it.
    fn baseline_level(&self, s: usize) -> f64 {
        let span = self.grid.retained_len();
        let series_mean = |sid: usize| {
            let avail = self.obs.available.series(sid);
            let vals = self.obs.values.series(sid);
            let mut sum = 0.0;
            let mut n = 0usize;
            for t in 0..span {
                if avail[t] {
                    sum += vals[t];
                    n += 1;
                }
            }
            (n > 0).then_some((sum, n))
        };
        if let Some((sum, n)) = series_mean(s) {
            return sum / n as f64;
        }
        let (sum, n) = (0..self.obs.n_series())
            .filter_map(series_mean)
            .fold((0.0, 0usize), |(a, b), (sum, n)| (a + sum, b + n));
        if n > 0 {
            sum / n as f64
        } else {
            0.0
        }
    }
}

/// A fault-injection hook over the raw window-batch forward results (one
/// `Vec<f64>` per evaluated window query), invoked inside the engine lock
/// after the forward pass and **before** the output guard. The fault suite
/// (`tests/serve_faults.rs`) uses it to panic mid-batch, stall an evaluation,
/// or poison outputs with NaN — every failure mode the serving layer promises
/// to survive; it is equally usable for chaos testing a deployment.
pub type EvalHook = Box<dyn FnMut(&mut [Vec<f64>]) + Send>;

/// Construction-time knobs for [`ImputationEngine::with_options`]. The
/// plain constructors are shorthands: [`ImputationEngine::new`] is all
/// defaults, [`ImputationEngine::with_retention`] sets `retention` only.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineOptions {
    /// Retention window in time steps (`None` = unbounded storage); see
    /// [`ImputationEngine::with_retention`].
    pub retention: Option<usize>,
    /// Health-counter shard count (`None` = derived from the machine's
    /// available parallelism, clamped to `[1, 16]`). Purely a contention
    /// knob: the shard map only buckets health counters, so any count
    /// serves identical data.
    pub shards: Option<usize>,
}

/// The online imputation engine. Shareable across threads behind an `Arc`;
/// all methods take `&self`.
pub struct ImputationEngine {
    model: FrozenModel,
    n_series: usize,
    /// Configured retention window in time steps (`None` = unbounded).
    retention: Option<usize>,
    /// Storage bound derived from `retention`: `w · (⌈retention/w⌉ + 1)`.
    /// The extra window of slack keeps the retained span ≥ `retention`
    /// through window-aligned eviction.
    ring_cap: Option<usize>,
    state: Mutex<EngineState>,
    counters: Counters,
    /// Sharded health counters + per-series lock-free warm snapshots.
    shards: ShardSet,
    /// Whether the lock-free warm read path is enabled (default: yes).
    /// Disabled, every query goes through the core lock — the single-mutex
    /// baseline the sharded bench arm and the bitwise replay test compare
    /// against.
    warm: AtomicBool,
    /// Forward-pass scratch checkout pool: owned by the engine rather than
    /// the locked state, so a panic unwinding through an evaluation simply
    /// abandons its scratch (the pool re-warms) instead of poisoning warm
    /// buffers, and scratch lifetime is independent of the core lock.
    scratch: ScratchPool,
}

impl ImputationEngine {
    /// Builds an engine over a frozen model and the current observed state of
    /// the dataset it serves. The imputation cache starts cold: every window
    /// containing missing entries is computed on first touch (or all at once
    /// via [`ImputationEngine::warm_up`]).
    ///
    /// `obs` may be *longer* than the model's trained length (a serving state
    /// that already grew past training, e.g. restored from a snapshot of a
    /// long-running deployment); it can never be shorter.
    ///
    /// Storage grows without bound as the stream runs — see
    /// [`ImputationEngine::with_retention`] for the bounded-memory variant.
    ///
    /// # Errors
    /// [`ServeError::Geometry`] when `obs` does not match the geometry the
    /// model was built for.
    pub fn new(model: FrozenModel, obs: ObservedDataset) -> Result<Self, ServeError> {
        Self::with_options(model, obs, EngineOptions::default())
    }

    /// Builds an engine with explicit [`EngineOptions`] — the fully general
    /// constructor behind [`ImputationEngine::new`] and
    /// [`ImputationEngine::with_retention`].
    ///
    /// # Errors
    /// As [`ImputationEngine::new`] / [`ImputationEngine::with_retention`].
    pub fn with_options(
        model: FrozenModel,
        obs: ObservedDataset,
        options: EngineOptions,
    ) -> Result<Self, ServeError> {
        if options.retention == Some(0) {
            return Err(ServeError::Geometry(
                "retention window must be at least one time step".into(),
            ));
        }
        Self::build(model, obs, options)
    }

    /// Like [`ImputationEngine::new`], but with a **retention ring**: resident
    /// storage is bounded by the ring cap `w · (⌈retention_len/w⌉ + 1)` time
    /// steps per series, and at least the newest `retention_len` steps are
    /// always retained. Appends past the cap evict the oldest window-aligned
    /// span ([`EngineStats::evictions`]); queries and backfills touching
    /// evicted time fail with [`ServeError::Evicted`].
    ///
    /// If `obs` already exceeds the cap, its oldest span is evicted
    /// immediately — the engine starts with [`ImputationEngine::retained_start`]
    /// past zero and never allocates beyond the cap. Unlike
    /// [`ImputationEngine::new`], `obs` may also be *shorter* than the
    /// trained length: a bounded engine's natural input is a retained window
    /// of history (e.g. the observed span of a ring snapshot restored cold),
    /// and the forward pass clips to the live data it has.
    ///
    /// ```
    /// use deepmvi::{DeepMviConfig, DeepMviModel};
    /// use mvi_data::generators::{generate_with_shape, DatasetName};
    /// use mvi_data::scenarios::Scenario;
    /// use mvi_serve::{ImputationEngine, ServeError};
    ///
    /// let ds = generate_with_shape(DatasetName::Gas, &[2], 60, 4);
    /// let obs = Scenario::mcar(1.0).apply(&ds, 1).observed();
    /// let cfg = DeepMviConfig { max_steps: 2, ..DeepMviConfig::tiny() };
    /// let mut model = DeepMviModel::new(&cfg, &obs);
    /// model.fit(&obs);
    ///
    /// // Keep (at least) the newest 30 steps; storage is capped near that.
    /// let engine = ImputationEngine::with_retention(model.freeze(), obs, 30).unwrap();
    /// let cap = engine.ring_capacity().unwrap();
    /// for chunk in 0..50 {
    ///     engine.append(0, &[chunk as f64; 5]).unwrap();
    ///     assert!(engine.storage_capacity() <= cap); // resident memory stays flat
    /// }
    /// let (start, live) = (engine.retained_start(), engine.live_len());
    /// assert_eq!(live, 60 + 250);              // logical time kept advancing
    /// assert!(live - start >= 30);             // the retention floor holds
    /// assert!(engine.query(0, start, live).is_ok());
    /// // Evicted time answers with a typed error, never silently-wrong data.
    /// assert!(matches!(
    ///     engine.query(0, start - 1, live),
    ///     Err(ServeError::Evicted { .. })
    /// ));
    /// ```
    ///
    /// # Errors
    /// [`ServeError::Geometry`] on a model/dataset mismatch (as in
    /// [`ImputationEngine::new`]) or a zero `retention_len`.
    pub fn with_retention(
        model: FrozenModel,
        obs: ObservedDataset,
        retention_len: usize,
    ) -> Result<Self, ServeError> {
        Self::with_options(
            model,
            obs,
            EngineOptions { retention: Some(retention_len), shards: None },
        )
    }

    /// The default health-counter shard count: one per available hardware
    /// thread, clamped to `[1, 16]`.
    fn default_shard_count() -> usize {
        mvi_parallel::available_threads().clamp(1, 16)
    }

    fn build(
        model: FrozenModel,
        obs: ObservedDataset,
        options: EngineOptions,
    ) -> Result<Self, ServeError> {
        let retention = options.retention;
        // A poisoned model (NaN/±inf weights — a diverged training run, or a
        // snapshot restored through a path without its own check) would
        // silently answer every query with NaN; refuse to serve it at all.
        if let Err(param) = model.validate_finite() {
            return Err(ServeError::NonFiniteWeights { param });
        }
        // A bounded engine accepts any history length (its input is a
        // retained window); an unbounded one must cover the trained span.
        let too_short = retention.is_none() && obs.t_len() < model.t_len();
        if obs.series_shape() != model.series_shape() || too_short {
            return Err(ServeError::Geometry(format!(
                "observed dataset {:?}x{} does not match model {:?}x{} (series shapes must \
                 match and an unbounded engine's dataset can only be longer than the trained \
                 length)",
                obs.series_shape(),
                obs.t_len(),
                model.series_shape(),
                model.t_len()
            )));
        }
        let w = model.grid().window_len();
        let grid = WindowGrid::new(w, obs.t_len());
        let ring_cap = retention.map(|r| w * (r.div_ceil(w) + 1));
        let n_series = obs.n_series();
        let watermark = (0..n_series)
            .map(|s| {
                let avail = obs.available.series(s);
                avail.iter().rposition(|&a| a).map_or(0, |t| t + 1)
            })
            .collect();
        let imputed = obs.values.clone();
        let mut state = EngineState {
            obs,
            grid,
            imputed,
            fresh: Vec::new(),
            degraded: Vec::new(),
            guard: None,
            eval_hook: None,
            watermark,
        };

        // A dataset already past the ring cap starts with its oldest span
        // evicted: storage is rebuilt at the cap, so memory never exceeds it
        // even transiently after construction.
        if let Some(cap) = ring_cap {
            let live = state.grid.t_len();
            if live > cap {
                let new_base = (live - cap).div_ceil(w) * w;
                let span = live - new_base;
                state.obs.retain_latest(span);
                state.obs.extend_time(cap);
                state.imputed.retain_latest(span);
                state.imputed.extend_time(cap, 0.0);
                state.grid.retain_from(new_base);
                for wm in &mut state.watermark {
                    *wm = (*wm).max(new_base);
                }
            }
        }
        state.fresh = vec![vec![false; state.grid.n_windows()]; n_series];
        state.degraded = vec![vec![false; state.grid.n_windows()]; n_series];
        let n_shards = options.shards.unwrap_or_else(Self::default_shard_count).max(1);
        let engine = Self {
            model,
            n_series,
            retention,
            ring_cap,
            state: Mutex::new(state),
            counters: Counters::default(),
            shards: ShardSet::new(n_series, n_shards),
            warm: AtomicBool::new(true),
            scratch: ScratchPool::new(),
        };
        engine.publish_initial();
        Ok(engine)
    }

    /// Publishes the initial warm snapshots at construction time (nothing is
    /// fresh yet, so they only short-circuit trivially-empty reads, but they
    /// establish the invariant that published state always mirrors the
    /// locked state).
    fn publish_initial(&self) {
        let state = self.lock_state();
        self.publish_all(&state);
    }

    /// Rebuilds and publishes the warm snapshot of series `s` from the
    /// locked state. Callers hold the core lock, which serializes all
    /// publication; the cell swap itself is wait-free for readers.
    fn publish_series(&self, state: &EngineState, s: usize) {
        let span = state.grid.retained_len();
        let (base, live, w) = (state.base(), state.live_t(), state.grid.window_len());
        let n_windows = state.grid.n_windows();
        let avail = state.obs.available.series(s);
        let missing: Vec<bool> = (0..n_windows)
            .map(|slot| {
                let lo = slot * w;
                let hi = ((slot + 1) * w).min(span);
                avail[lo..hi].iter().any(|&a| !a)
            })
            .collect();
        // A window is *servable* warm if its cache is fresh — or if it has
        // nothing to impute: fully-observed windows are never computed (the
        // locked path skips them too), so their freshness bit stays false
        // forever while their cached values are exact.
        let fresh: Vec<bool> =
            (0..n_windows).map(|slot| state.fresh[s][slot] || !missing[slot]).collect();
        let snap = SeriesSnap {
            base,
            live,
            w,
            values: state.imputed.series(s)[..span].to_vec(),
            fresh,
            degraded: state.degraded[s].clone(),
            missing,
        };
        self.shards.publish(s, snap);
    }

    /// Publishes every series' warm snapshot (skipped entirely while the
    /// warm path is disabled — the single-mutex baseline pays zero
    /// publication cost).
    fn publish_all(&self, state: &EngineState) {
        if !self.warm.load(Ordering::Relaxed) {
            return;
        }
        for s in 0..self.n_series {
            self.publish_series(state, s);
        }
    }

    /// Publishes the warm snapshots of a specific series set (the query
    /// path republishes only what it recomputed).
    fn publish_series_set(&self, state: &EngineState, set: impl IntoIterator<Item = usize>) {
        if !self.warm.load(Ordering::Relaxed) {
            return;
        }
        for s in set {
            self.publish_series(state, s);
        }
    }

    /// Assembles an engine directly from restored parts (the snapshot
    /// warm-restart path): the caller has already validated geometry and the
    /// state is taken as-is — `parts.obs`/`parts.imputed` are physical
    /// storage whose position `0` is logical time `parts.retained_start`.
    pub(crate) fn from_parts(model: FrozenModel, parts: RestoredParts) -> Self {
        let RestoredParts { obs, imputed, fresh, watermark, retained_start, live_t_len, retention } =
            parts;
        let w = model.grid().window_len();
        let mut grid = WindowGrid::new(w, live_t_len);
        if retained_start > 0 {
            grid.retain_from(retained_start);
        }
        let ring_cap = retention.map(|r| w * (r.div_ceil(w) + 1));
        let n_series = obs.n_series();
        debug_assert_eq!(obs.t_len(), grid.retained_len(), "physical span mismatch");
        let degraded = fresh.iter().map(|f| vec![false; f.len()]).collect();
        let state = EngineState {
            obs,
            grid,
            imputed,
            fresh,
            degraded,
            guard: None,
            eval_hook: None,
            watermark,
        };
        let engine = Self {
            model,
            n_series,
            retention,
            ring_cap,
            state: Mutex::new(state),
            counters: Counters::default(),
            shards: ShardSet::new(n_series, Self::default_shard_count()),
            warm: AtomicBool::new(true),
            scratch: ScratchPool::new(),
        };
        engine.publish_initial();
        engine
    }

    /// Acquires the state lock, **recovering from poisoning**: when a panic
    /// unwound through a serving call (an injected fault, a numeric assert),
    /// the state may hold partially-applied cache writes, so recovery marks
    /// every window stale — correctness self-heals through lazy recomputation
    /// — clears the poison flag and counts the event
    /// ([`HealthReport::poison_recoveries`]). A panic therefore costs
    /// recompute work, never wrong answers and never a wedged engine.
    fn lock_state(&self) -> MutexGuard<'_, EngineState> {
        // Contended acquisitions are timed (the blocked-time probe of the
        // sharded bench arm); the uncontended fast path costs no clock read.
        let locked = match self.state.try_lock() {
            Ok(guard) => Ok(guard),
            Err(TryLockError::Poisoned(poisoned)) => Err(poisoned),
            Err(TryLockError::WouldBlock) => {
                let t0 = std::time::Instant::now();
                let locked = self.state.lock();
                self.counters
                    .lock_wait_nanos
                    .fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
                locked
            }
        };
        match locked {
            Ok(guard) => guard,
            Err(poisoned) => {
                self.state.clear_poison();
                let mut guard = poisoned.into_inner();
                for fresh in &mut guard.fresh {
                    fresh.iter_mut().for_each(|f| *f = false);
                }
                self.shards.bump_poison();
                // The published warm snapshots predate the scrub; republish
                // so the lock-free path cannot serve windows the recovery
                // just distrusted.
                self.publish_all(&guard);
                guard
            }
        }
    }

    /// Installs (or clears) the [`ValueGuard`] that screens every value
    /// entering through [`ImputationEngine::append`] /
    /// [`ImputationEngine::fill_range`]. Guarded mutations quarantine
    /// violating values instead of recording them; see [`ValueGuard`].
    pub fn set_value_guard(&self, guard: Option<ValueGuard>) {
        self.lock_state().guard = guard;
    }

    /// Installs (or clears) the fault-injection hook run on every
    /// window-batch forward result (see [`EvalHook`]). This is the seam the
    /// fault suite drives panics, stalls and poisoned outputs through; it is
    /// `None` in production unless you are chaos-testing.
    pub fn set_eval_hook(&self, hook: Option<EvalHook>) {
        self.lock_state().eval_hook = hook;
    }

    /// Point-in-time health counters: quarantine activity, rejected
    /// non-finite inputs, output-guard degradations and poison recoveries.
    ///
    /// The report is a **consistent snapshot**: it is assembled while
    /// holding every shard lock at once (ascending order — the same
    /// multi-shard protocol every mutator follows), and mutators bump all
    /// counters a mutation touches under one such acquisition. The report
    /// therefore never shows a torn aggregate: `quarantined` always equals
    /// the sum of `quarantined_by_series`, and the degraded gauge never
    /// counts a half-applied batch. Never takes the core state lock, so
    /// health stays responsive while a recompute runs.
    pub fn health(&self) -> HealthReport {
        let guards = self.shards.lock_all();
        let mut report = HealthReport {
            quarantined_by_series: vec![0; self.n_series],
            ..HealthReport::default()
        };
        for shard in &guards {
            for (total, per) in
                report.quarantined_by_series.iter_mut().zip(&shard.quarantined_by_series)
            {
                *total += per;
            }
            report.quarantined += shard.quarantined;
            report.nonfinite_input_rejections += shard.nonfinite_input_rejections;
            report.degraded_events += shard.degraded_events;
            report.degraded_windows += shard.degraded_windows;
        }
        // Poison count is the terminal lock level: still inside the shard
        // guards, so the whole report is one point in time.
        report.poison_recoveries = self.shards.poison_recoveries();
        drop(guards);
        report
    }

    /// Number of health-counter shards (a construction-time contention knob;
    /// see [`EngineOptions::shards`]).
    pub fn shard_count(&self) -> usize {
        self.shards.n_shards()
    }

    /// The shard owning series `s`'s health counters (a stable hash of the
    /// series id). Exposed so tests can construct shard-collision and
    /// shard-isolation workloads deterministically.
    pub fn shard_of(&self, s: usize) -> usize {
        self.shards.shard_of(s)
    }

    /// Whether the lock-free warm read path is enabled (it is by default).
    pub fn warm_reads(&self) -> bool {
        self.warm.load(Ordering::Relaxed)
    }

    /// Enables or disables the lock-free warm read path. Disabled, every
    /// query takes the core state lock — the single-mutex baseline used by
    /// the sharded bench arm and the bitwise replay property test. Safe to
    /// flip live: re-enabling republishes every series under the core lock
    /// *before* the flag turns on, so the warm path can never serve state
    /// from before the gap.
    pub fn set_warm_reads(&self, on: bool) {
        let state = self.lock_state();
        if on {
            // Mutations made while the path was off never published;
            // snapshots must be current before the first warm read.
            for s in 0..self.n_series {
                self.publish_series(&state, s);
            }
        }
        self.warm.store(on, Ordering::Relaxed);
        drop(state);
    }

    /// Total nanoseconds serving calls have spent blocked on a *contended*
    /// core state lock since construction. The sharded bench arm's
    /// blocked-time probe: with warm reads on, readers never touch the core
    /// lock, so this stays flat while query load runs against appends.
    pub fn lock_wait_nanos(&self) -> u64 {
        self.counters.lock_wait_nanos.load(Ordering::Relaxed)
    }

    /// The frozen model this engine serves.
    pub fn model(&self) -> &FrozenModel {
        &self.model
    }

    /// A snapshot of the live window grid: `grid().t_len()` is the current
    /// live series length, which grows as appends run past it.
    pub fn grid(&self) -> WindowGrid {
        self.lock_state().grid
    }

    /// Current live series length (starts at the constructed dataset's length
    /// and grows with appends).
    pub fn live_len(&self) -> usize {
        self.lock_state().live_t()
    }

    /// Series length the served model was trained on (fixed).
    pub fn trained_len(&self) -> usize {
        self.model.t_len()
    }

    /// The configured retention window in time steps, or `None` for an
    /// unbounded engine.
    pub fn retention(&self) -> Option<usize> {
        self.retention
    }

    /// The oldest retained logical time position: `0` on unbounded engines,
    /// advancing (window-aligned) as the retention ring evicts. Queries
    /// before this fail with [`ServeError::Evicted`].
    pub fn retained_start(&self) -> usize {
        self.lock_state().base()
    }

    /// The hard per-series storage bound in time steps,
    /// `w · (⌈retention_len/w⌉ + 1)`, or `None` for an unbounded engine.
    /// [`ImputationEngine::storage_capacity`] never exceeds this.
    pub fn ring_capacity(&self) -> Option<usize> {
        self.ring_cap
    }

    /// Current *physical* storage capacity in time steps per series — the
    /// resident-memory footprint of the series buffers. Grows geometrically
    /// on an unbounded engine; capped at [`ImputationEngine::ring_capacity`]
    /// under retention (the long-stream bench asserts this stays flat).
    pub fn storage_capacity(&self) -> usize {
        self.lock_state().obs.t_len()
    }

    /// Computes every stale window with missing entries now, so subsequent
    /// queries are pure cache reads. Returns the number of windows computed.
    pub fn warm_up(&self) -> usize {
        let mut state = self.lock_state();
        let mut queries = Vec::new();
        let (base, live_t) = (state.base(), state.live_t());
        for s in 0..self.n_series {
            self.collect_stale(&state, s, base, live_t, &mut queries);
        }
        self.compute_and_fill(&mut state, &queries);
        self.publish_all(&state);
        queries.len()
    }

    /// Serves one request (a micro-batch of one); see
    /// [`ImputationEngine::query_batch`].
    ///
    /// # Errors
    /// [`ServeError::Series`] / [`ServeError::Range`] on an invalid request.
    pub fn query(&self, s: usize, start: usize, end: usize) -> Result<Vec<f64>, ServeError> {
        // mvi-allow: panic — query_batch returns exactly one answer per request
        self.query_batch(&[ImputeRequest { s, start, end }]).pop().expect("one result")
    }

    /// Like [`ImputationEngine::query`], but the answer carries its
    /// serving-quality flag: `degraded` is set when any window overlapping the
    /// range is currently serving the mean-baseline fallback (see
    /// [`ImputeResponse`]).
    ///
    /// # Errors
    /// [`ServeError::Series`] / [`ServeError::Range`] on an invalid request.
    pub fn query_flagged(
        &self,
        s: usize,
        start: usize,
        end: usize,
    ) -> Result<ImputeResponse, ServeError> {
        // mvi-allow: panic — query_batch_flagged returns exactly one answer per request
        self.query_batch_flagged(&[ImputeRequest { s, start, end }]).pop().expect("one result")
    }

    /// Serves a micro-batch of requests: validates each against the live
    /// series length (and, under retention, the evicted boundary), coalesces
    /// the stale windows the batch needs (deduplicated across overlapping
    /// requests), evaluates them in one data-parallel pass, then answers
    /// every request from the refreshed cache. Per-request errors do not
    /// poison the batch.
    ///
    /// Equivalent to [`ImputationEngine::query_batch_flagged`] with the
    /// degradation flags dropped.
    pub fn query_batch(&self, requests: &[ImputeRequest]) -> Vec<Result<Vec<f64>, ServeError>> {
        self.query_batch_flagged(requests).into_iter().map(|r| r.map(|resp| resp.values)).collect()
    }

    /// The flag-carrying form of [`ImputationEngine::query_batch`]: each
    /// answer is an [`ImputeResponse`] whose `degraded` bit reports whether
    /// the range overlaps a window currently serving the mean-baseline
    /// fallback (its forward output was non-finite; see the output guard in
    /// [`ImputationEngine::health`] and the module docs).
    pub fn query_batch_flagged(
        &self,
        requests: &[ImputeRequest],
    ) -> Vec<Result<ImputeResponse, ServeError>> {
        self.counters.requests.fetch_add(requests.len() as u64, Ordering::Relaxed);
        self.counters.batches.fetch_add(1, Ordering::Relaxed);

        let mut answers: Vec<Option<Result<ImputeResponse, ServeError>>> =
            vec![None; requests.len()];
        let mut hits = 0usize;

        // Warm fast path: a request whose overlapped windows are all fresh
        // in the published snapshot is answered with zero locking — it
        // cannot block (or be blocked by) appends or other readers. Each
        // answer linearizes at its snapshot load: publication happens before
        // a mutation returns, so completed mutations are always visible.
        if self.warm_reads() {
            for (slot, r) in answers.iter_mut().zip(requests) {
                if r.s >= self.n_series {
                    continue; // typed error produced by the locked path below
                }
                let snap = self.shards.snapshot(r.s);
                if let Some((resp, snap_hits)) = snap.answer(r.start, r.end) {
                    hits += snap_hits;
                    *slot = Some(Ok(resp));
                }
            }
        }

        // Slow path for whatever the snapshots could not serve: invalid
        // requests (typed errors), stale windows (recompute + republish),
        // or everything when the warm path is disabled.
        if answers.iter().any(|a| a.is_none()) {
            let mut state = self.lock_state();
            let (base, live_t) = (state.base(), state.live_t());
            let mut queries = Vec::new();
            let mut needed = BTreeSet::new();
            for (slot, r) in answers.iter_mut().zip(requests) {
                if slot.is_some() {
                    continue;
                }
                let err = if r.s >= self.n_series {
                    Some(ServeError::Series { s: r.s, n_series: self.n_series })
                } else if r.start > r.end || r.end > live_t {
                    Some(ServeError::Range { start: r.start, end: r.end, t_len: live_t })
                } else if r.start < base {
                    Some(ServeError::Evicted { start: r.start, end: r.end, retained_start: base })
                } else {
                    None
                };
                if let Some(e) = err {
                    *slot = Some(Err(e));
                    continue;
                }
                hits += self.collect_stale_dedup(
                    &state,
                    r.s,
                    r.start,
                    r.end,
                    &mut needed,
                    &mut queries,
                );
            }
            self.compute_and_fill(&mut state, &queries);
            for (slot, r) in answers.iter_mut().zip(requests) {
                if slot.is_none() {
                    *slot = Some(Ok(ImputeResponse {
                        values: state.imputed.series(r.s)[r.start - base..r.end - base].to_vec(),
                        degraded: state
                            .grid
                            .windows_overlapping(r.start, r.end)
                            .any(|wj| state.degraded[r.s][state.grid.slot(wj)]),
                    }));
                }
            }
            // Republish what this batch recomputed so the next reader of
            // these series takes the warm path again.
            let recomputed: BTreeSet<usize> = queries.iter().map(|q| q.s).collect();
            self.publish_series_set(&state, recomputed);
        }

        self.counters.window_hits.fetch_add(hits as u64, Ordering::Relaxed);
        // mvi-allow: panic — every slot is filled on the validation, warm, or recompute path above
        answers.into_iter().map(|a| a.expect("every request answered")).collect()
    }

    /// Records newly arrived values for series `s` at its write watermark and
    /// re-imputes the affected tail windows (see the module docs for the exact
    /// affected set). An append running past the current live length **grows**
    /// the series: the live grid extends, storage grows geometrically when
    /// capacity is exhausted, and windows past the trained length are served
    /// through the frozen model's rolling temporal context — streaming never
    /// hits a capacity wall. Under retention, growth past the ring cap
    /// instead **evicts the oldest window-aligned span** first, so resident
    /// storage stays bounded while the stream runs forever (an append larger
    /// than the ring records only its newest retained tail). Returns what was
    /// recorded and recomputed.
    ///
    /// # Errors
    /// [`ServeError::Series`] for a bad id, [`ServeError::NonFiniteInput`]
    /// when the payload carries NaN/±inf (the whole append is refused before
    /// anything is recorded).
    pub fn append(&self, s: usize, values: &[f64]) -> Result<AppendReport, ServeError> {
        if s >= self.n_series {
            return Err(ServeError::Series { s, n_series: self.n_series });
        }
        self.check_finite(s, values)?;
        let mut state = self.lock_state();
        let wm = state.watermark[s];
        let end = wm + values.len();
        if values.is_empty() {
            return Ok(AppendReport {
                recorded: (wm, wm),
                windows_recomputed: 0,
                positions_refreshed: 0,
                windows_invalidated: 0,
                values_quarantined: 0,
                live_len: state.live_t(),
                retained_start: state.base(),
            });
        }
        let mut evicted_stale = 0usize;
        if end > state.live_t() {
            evicted_stale = self.grow(&mut state, end);
        }
        // Eviction may have advanced the ring past the watermark (a huge
        // append, or a series that idled while siblings streamed on): the
        // prefix of `values` destined for evicted time is dropped immediately.
        let start = wm.max(state.base());
        let quarantined = self.record(&mut state, s, start, &values[start - wm..]);
        state.watermark[s] = end;

        // Eager set: the whole tail from one window before the append (the
        // fine-grained mean reaches `w` steps across a window boundary). When
        // the append grew the series, every window holding newly-live
        // positions overlaps `[start, end)` — the appended range ends at the
        // new live end — so extended windows of *all* series are refreshed or
        // invalidated by the shared plumbing below too.
        let tail = state.grid.tail_windows_for(start);
        let mut report = self.refresh_after_record(&mut state, s, start, end, tail);
        report.windows_invalidated += evicted_stale;
        report.values_quarantined = quarantined;

        self.counters.appends.fetch_add(1, Ordering::Relaxed);
        // Count what was *recorded*: a prefix the eviction consumed (start
        // past the old watermark) was dropped, not recorded, and quarantined
        // values were observed but never entered storage.
        self.counters
            .values_appended
            .fetch_add((end - start - quarantined) as u64, Ordering::Relaxed);
        // Publish before the core lock releases: every series' freshness
        // may have changed (sibling invalidation), and a reader that starts
        // after this append returns must observe it.
        self.publish_all(&state);
        Ok(report)
    }

    /// Records late-arriving values for series `s` at an explicit position
    /// inside the live range — the *backfill* counterpart of
    /// [`ImputationEngine::append`] for interior gaps the watermark has
    /// already passed (e.g. a sensor outage healed by a delayed batch upload).
    ///
    /// Re-imputes eagerly every window within local reach of the filled range
    /// (±`w`: the fine-grained mean crosses one window boundary) plus sibling
    /// windows overlapping it (kernel regression), and invalidates the rest of
    /// the series' fresh windows for lazy healing (attention context), exactly
    /// mirroring the append contract: eager positions match a full batch
    /// re-impute of the current state.
    ///
    /// The watermark only moves if the filled range ends past it; filling an
    /// interior gap leaves streaming appends unaffected:
    ///
    /// ```
    /// # use deepmvi::{DeepMviConfig, DeepMviModel};
    /// # use mvi_data::generators::{generate_with_shape, DatasetName};
    /// # use mvi_data::scenarios::Scenario;
    /// # use mvi_serve::ImputationEngine;
    /// # let ds = generate_with_shape(DatasetName::Gas, &[2], 60, 4);
    /// # let mut obs = Scenario::mcar(1.0).apply(&ds, 1).observed();
    /// // A hidden interior range with observed data after it: the watermark
    /// // starts at the series end, past the gap.
    /// obs.hide_range(0, 20, 30);
    /// # let cfg = DeepMviConfig { max_steps: 2, ..DeepMviConfig::tiny() };
    /// # let mut model = DeepMviModel::new(&cfg, &obs);
    /// # model.fit(&obs);
    /// let engine = ImputationEngine::new(model.freeze(), obs).unwrap();
    /// assert_eq!(engine.watermark(0).unwrap(), 60);
    ///
    /// // Backfilling the gap records the late data without moving the cursor…
    /// engine.fill_range(0, 20, &[1.5; 10]).unwrap();
    /// assert_eq!(engine.watermark(0).unwrap(), 60);
    /// assert_eq!(engine.query(0, 20, 30).unwrap(), vec![1.5; 10]);
    /// // …so the next streaming append still lands at the series end.
    /// assert_eq!(engine.append(0, &[2.0]).unwrap().recorded, (60, 61));
    /// ```
    ///
    /// # Errors
    /// [`ServeError::Series`] for a bad id, [`ServeError::Range`] when the
    /// range leaves the live series (backfill never grows a series — that is
    /// `append`'s job), [`ServeError::Evicted`] when the range touches time
    /// the retention ring has already dropped (backfill cannot resurrect
    /// evicted history), [`ServeError::NonFiniteInput`] when the payload
    /// carries NaN/±inf (the whole backfill is refused before anything is
    /// recorded).
    pub fn fill_range(
        &self,
        s: usize,
        start: usize,
        values: &[f64],
    ) -> Result<AppendReport, ServeError> {
        if s >= self.n_series {
            return Err(ServeError::Series { s, n_series: self.n_series });
        }
        self.check_finite(s, values)?;
        let mut state = self.lock_state();
        let live_t = state.live_t();
        let end = start + values.len();
        if start > live_t || end > live_t {
            return Err(ServeError::Range { start, end, t_len: live_t });
        }
        if start < state.base() {
            return Err(ServeError::Evicted { start, end, retained_start: state.base() });
        }
        if values.is_empty() {
            return Ok(AppendReport {
                recorded: (start, start),
                windows_recomputed: 0,
                positions_refreshed: 0,
                windows_invalidated: 0,
                values_quarantined: 0,
                live_len: live_t,
                retained_start: state.base(),
            });
        }
        let quarantined = self.record(&mut state, s, start, values);
        state.watermark[s] = state.watermark[s].max(end);

        // Eager set: windows within the ±w local reach of the filled range
        // (clamped to the ring origin by the grid).
        let w = state.grid.window_len();
        let eager = state.grid.windows_overlapping(start.saturating_sub(w), (end + w).min(live_t));
        let mut report = self.refresh_after_record(&mut state, s, start, end, eager);
        report.values_quarantined = quarantined;

        self.counters.backfills.fetch_add(1, Ordering::Relaxed);
        self.counters
            .values_backfilled
            .fetch_add((values.len() - quarantined) as u64, Ordering::Relaxed);
        self.publish_all(&state);
        Ok(report)
    }

    /// The shared mutation plumbing behind [`ImputationEngine::append`] and
    /// [`ImputationEngine::fill_range`], run after `[start, end)` of series
    /// `s` was recorded: marks every affected window stale — all of `s` (the
    /// attention context can reach anywhere in the series) plus sibling
    /// windows overlapping the recorded range (the kernel regression reads
    /// sibling values pointwise) — then eagerly recomputes the `eager` window
    /// range of `s` and the sibling overlaps in one batch. Windows of `s`
    /// outside `eager` heal lazily on their next touch and are counted as
    /// `windows_invalidated`.
    fn refresh_after_record(
        &self,
        state: &mut EngineState,
        s: usize,
        start: usize,
        end: usize,
        eager: Range<usize>,
    ) -> AppendReport {
        let overlap = state.grid.windows_overlapping(start, end);
        let first = state.grid.first_window();
        let mut invalidated = 0usize;
        for j in state.grid.window_range() {
            if eager.contains(&j) {
                state.fresh[s][j - first] = false;
            } else if state.fresh[s][j - first] {
                state.fresh[s][j - first] = false;
                invalidated += 1;
            }
        }
        for sib in 0..self.n_series {
            if sib != s {
                for j in overlap.clone() {
                    state.fresh[sib][j - first] = false;
                }
            }
        }

        let mut queries = Vec::new();
        let mut needed = BTreeSet::new();
        if !eager.is_empty() {
            let (eager_lo, _) = state.grid.bounds(eager.start);
            let (_, eager_hi) = state.grid.bounds(eager.end - 1);
            self.collect_stale_dedup(state, s, eager_lo, eager_hi, &mut needed, &mut queries);
        }
        for sib in 0..self.n_series {
            if sib != s {
                self.collect_stale_dedup(state, sib, start, end, &mut needed, &mut queries);
            }
        }
        let positions_refreshed = queries.iter().map(|q| q.positions.len()).sum();
        let windows_recomputed = queries.len();
        self.compute_and_fill(state, &queries);
        AppendReport {
            recorded: (start, end),
            windows_recomputed,
            positions_refreshed,
            windows_invalidated: invalidated,
            values_quarantined: 0,
            live_len: state.live_t(),
            retained_start: state.base(),
        }
    }

    /// The non-finite input gate shared by [`ImputationEngine::append`] and
    /// [`ImputationEngine::fill_range`]: runs before the state lock is even
    /// taken, so a rejected mutation provably touches nothing.
    fn check_finite(&self, s: usize, values: &[f64]) -> Result<(), ServeError> {
        match values.iter().position(|v| !v.is_finite()) {
            None => Ok(()),
            Some(offset) => {
                self.shards.lock_for_series(s).nonfinite_input_rejections += 1;
                Err(ServeError::NonFiniteInput { s, offset })
            }
        }
    }

    /// The next write position of series `s` — one past the last observed
    /// entry at construction, advanced by appends. Note this is a *streaming*
    /// cursor: a hidden interior gap before the watermark is backfilled with
    /// [`ImputationEngine::fill_range`], not `append`.
    ///
    /// # Errors
    /// [`ServeError::Series`] for a bad id.
    pub fn watermark(&self, s: usize) -> Result<usize, ServeError> {
        if s >= self.n_series {
            return Err(ServeError::Series { s, n_series: self.n_series });
        }
        Ok(self.lock_state().watermark[s])
    }

    /// A copy of the full retained imputation cache (observed values + latest
    /// imputations over the retained span). On an unbounded engine this is
    /// the whole live series; under retention the tensor's time axis starts
    /// at [`ImputationEngine::retained_start`]. Primarily for tests and
    /// offline comparison.
    pub fn cached_values(&self) -> Tensor {
        let state = self.lock_state();
        state.imputed.truncated_time(state.grid.retained_len())
    }

    /// A copy of the current observed state the engine serves, over the
    /// retained span (capacity slack excluded; the time axis starts at
    /// [`ImputationEngine::retained_start`]). Viewed as a standalone dataset
    /// this is exactly the truncated-batch-re-impute oracle the retention
    /// consistency contract is stated against.
    pub fn observed(&self) -> ObservedDataset {
        let state = self.lock_state();
        state.obs.truncated(state.grid.retained_len())
    }

    /// A consistent copy of the warm serving state for
    /// [`ImputationEngine::snapshot`], taken under one lock acquisition:
    /// `(cache, dims, live_t_len, retained_start)`.
    pub(crate) fn cache_snapshot(
        &self,
    ) -> (crate::snapshot::CacheSnapshot, Vec<mvi_data::dataset::DimSpec>, usize, usize) {
        let state = self.lock_state();
        let span = state.grid.retained_len();
        let cache = crate::snapshot::CacheSnapshot {
            name: state.obs.name.clone(),
            values: state.obs.values.truncated_time(span),
            available: state.obs.available.truncated_time(span),
            imputed: state.imputed.truncated_time(span),
            // Degraded windows snapshot as *stale*: the wire has no
            // degradation bit, and restoring baseline fallback values as
            // fresh cache would serve them unflagged. Stale heals honestly.
            fresh: state
                .fresh
                .iter()
                .zip(&state.degraded)
                .map(|(f, d)| f.iter().zip(d).map(|(&f, &d)| f && !d).collect())
                .collect(),
            watermark: state.watermark.clone(),
        };
        (cache, state.obs.dims.clone(), state.grid.t_len(), state.base())
    }

    /// Point-in-time serving counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            requests: self.counters.requests.load(Ordering::Relaxed),
            batches: self.counters.batches.load(Ordering::Relaxed),
            windows_computed: self.counters.windows_computed.load(Ordering::Relaxed),
            window_hits: self.counters.window_hits.load(Ordering::Relaxed),
            appends: self.counters.appends.load(Ordering::Relaxed),
            values_appended: self.counters.values_appended.load(Ordering::Relaxed),
            backfills: self.counters.backfills.load(Ordering::Relaxed),
            values_backfilled: self.counters.values_backfilled.load(Ordering::Relaxed),
            evictions: self.counters.evictions.load(Ordering::Relaxed),
            steps_evicted: self.counters.steps_evicted.load(Ordering::Relaxed),
        }
    }

    /// Extends the live length to `live_needed`, growing the backing storage
    /// geometrically (≥1.5×, window-aligned) when capacity runs out so a
    /// stream of small appends moves each element O(1) times amortized. The
    /// slack `[retained span, capacity)` stays all-missing, which the forward
    /// pass treats exactly like data that does not exist.
    ///
    /// Under retention, growth past the ring cap evicts first
    /// ([`ImputationEngine::evict_to`]) and capacity is clamped at the cap,
    /// so resident storage never exceeds it. Returns the number of
    /// previously-fresh windows the eviction invalidated (0 without one).
    fn grow(&self, state: &mut EngineState, live_needed: usize) -> usize {
        state.grid.grow_to(live_needed);
        let mut evicted_stale = 0usize;
        if let Some(cap) = self.ring_cap {
            let base = state.base();
            if live_needed - base > cap {
                let w = state.grid.window_len();
                let new_base = (live_needed - cap).div_ceil(w) * w;
                evicted_stale = self.evict_to(state, new_base);
            }
        }
        let span = state.grid.retained_len();
        let capacity = state.obs.t_len();
        if span > capacity {
            let w = state.grid.window_len();
            let target = span.max(capacity + capacity / 2);
            let mut new_capacity = target.div_ceil(w) * w;
            if let Some(cap) = self.ring_cap {
                new_capacity = new_capacity.min(cap);
            }
            state.obs.extend_time(new_capacity);
            state.imputed.extend_time(new_capacity, 0.0);
        }
        let n_windows = state.grid.n_windows();
        for fresh in &mut state.fresh {
            fresh.resize(n_windows, false);
        }
        for degraded in &mut state.degraded {
            degraded.resize(n_windows, false);
        }
        evicted_stale
    }

    /// Advances the retention ring to `new_base` (window-aligned, past the
    /// current origin): the oldest `new_base - origin` steps of every series
    /// leave physical storage (each buffer slides left in place; capacity is
    /// unchanged and the vacated suffix re-opens as all-missing slack), the
    /// per-window freshness vectors drop their evicted slots, and watermarks
    /// are clamped so no series can write into evicted time.
    ///
    /// Retained windows whose forward inputs reached the evicted span are
    /// marked stale: the first `trained-horizon − 1` retained windows (their
    /// rolling attention context started before `new_base`; the origin
    /// window's ±`w` fine-grained reach is inside that prefix too — except
    /// when the horizon is a single window, where the fine-grained reach
    /// alone stales the origin window). Everything deeper keeps its cache:
    /// its context lies entirely inside the ring, so a recompute would
    /// reproduce it bitwise. Returns how many previously-fresh windows were
    /// invalidated.
    fn evict_to(&self, state: &mut EngineState, new_base: usize) -> usize {
        let w = state.grid.window_len();
        let drop = new_base - state.base();
        debug_assert!(drop > 0 && drop.is_multiple_of(w), "eviction must drop whole windows");
        let capacity = state.obs.t_len();
        if drop < capacity {
            state.obs.retain_latest(capacity - drop);
            state.obs.extend_time(capacity);
            state.imputed.retain_latest(capacity - drop);
            state.imputed.extend_time(capacity, 0.0);
        } else {
            // One append jumped past the whole ring: every resident step is
            // evicted. Reset storage to all-missing in place.
            for s in 0..self.n_series {
                state.obs.hide_range(s, 0, capacity);
            }
            state.imputed.data_mut().fill(0.0);
        }
        state.grid.retain_from(new_base);
        for wm in &mut state.watermark {
            *wm = (*wm).max(new_base);
        }

        let drop_w = drop / w;
        let horizon_w = self.model.t_len().div_ceil(w);
        let stale_reach = horizon_w.saturating_sub(1).max(1);
        let mut invalidated = 0usize;
        for fresh in &mut state.fresh {
            let evicted = drop_w.min(fresh.len());
            fresh.drain(..evicted);
            for f in fresh.iter_mut().take(stale_reach) {
                if *f {
                    *f = false;
                    invalidated += 1;
                }
            }
        }
        // Evicted degraded slots leave the gauge: collect per-shard deltas,
        // then apply them under one ascending multi-shard acquisition.
        let mut gauge_deltas: BTreeMap<usize, u64> = BTreeMap::new();
        for (s, degraded) in state.degraded.iter_mut().enumerate() {
            let evicted = drop_w.min(degraded.len());
            let gone = degraded[..evicted].iter().filter(|&&d| d).count() as u64;
            if gone > 0 {
                *gauge_deltas.entry(self.shards.shard_of(s)).or_default() += gone;
            }
            degraded.drain(..evicted);
        }
        if !gauge_deltas.is_empty() {
            let shards: BTreeSet<usize> = gauge_deltas.keys().copied().collect();
            for (idx, mut guard) in self.shards.lock_many(&shards) {
                guard.degraded_windows = guard.degraded_windows.saturating_sub(gauge_deltas[&idx]);
            }
        }
        self.counters.evictions.fetch_add(1, Ordering::Relaxed);
        self.counters.steps_evicted.fetch_add(drop as u64, Ordering::Relaxed);
        invalidated
    }

    /// Writes `values` into the observed state and the imputation cache at
    /// logical `[start, start + len)` of series `s` (retained and live by the
    /// caller's validation/growth).
    ///
    /// When a [`ValueGuard`] is installed, guard-violating values are
    /// **quarantined**: skipped here, so their positions stay missing (and
    /// get imputed like any other gap), counted per series and in total.
    /// Returns how many values were quarantined (`0` without a guard). The
    /// jump reference starts at the nearest earlier observed value of the
    /// retained span and then tracks the last *accepted* value, so one glitch
    /// does not re-anchor the level and take the rest of the chunk with it.
    fn record(&self, state: &mut EngineState, s: usize, start: usize, values: &[f64]) -> usize {
        let p = start - state.base();
        let Some(guard) = state.guard else {
            state.obs.record_range(s, p, values);
            state.imputed.series_mut(s)[p..p + values.len()].copy_from_slice(values);
            return 0;
        };
        let mut prev = {
            let avail = state.obs.available.series(s);
            let vals = state.obs.values.series(s);
            (0..p).rev().find(|&t| avail[t]).map(|t| vals[t])
        };
        // Record maximal accepted runs so the common no-quarantine chunk still
        // lands in one `record_range` call.
        let mut quarantined = 0usize;
        let mut run = 0usize;
        for (i, &v) in values.iter().enumerate() {
            if guard.quarantines(v, prev) {
                if run < i {
                    state.obs.record_range(s, p + run, &values[run..i]);
                    state.imputed.series_mut(s)[p + run..p + i].copy_from_slice(&values[run..i]);
                }
                run = i + 1;
                quarantined += 1;
            } else {
                prev = Some(v);
            }
        }
        if run < values.len() {
            state.obs.record_range(s, p + run, &values[run..]);
            state.imputed.series_mut(s)[p + run..p + values.len()].copy_from_slice(&values[run..]);
        }
        if quarantined > 0 {
            // Per-series count and shard total move together under one lock
            // acquisition, so no health report can see them torn apart.
            let mut shard = self.shards.lock_for_series(s);
            shard.quarantined_by_series[s] += quarantined as u64;
            shard.quarantined += quarantined as u64;
        }
        quarantined
    }

    /// Appends the stale windows with missing entries of series `s` inside
    /// logical `[start, end)` to `queries` (no dedup across calls).
    fn collect_stale(
        &self,
        state: &EngineState,
        s: usize,
        start: usize,
        end: usize,
        queries: &mut Vec<WindowQuery>,
    ) {
        let mut needed = BTreeSet::new();
        self.collect_stale_dedup(state, s, start, end, &mut needed, queries);
    }

    /// Like [`ImputationEngine::collect_stale`], but skips `(s, window)` pairs
    /// already in `needed` — the coalescing step that lets overlapping
    /// requests in one micro-batch share a single forward pass per window.
    /// Returns how many windows were skipped because they were fresh (cache
    /// hits — windows claimed by an earlier request in the batch are shared
    /// work, not hits).
    ///
    /// Freshness is checked per window *before* enumerating any positions, so
    /// the steady-state all-fresh request costs one bool scan per overlapped
    /// window and zero allocation. Queries always carry the full window's
    /// missing positions (the request range may clip the window, but the
    /// freshness bit covers all of it).
    ///
    /// `start`/`end` are logical; the produced [`WindowQuery`]s are
    /// **physical** (storage slots and storage positions) — precisely the
    /// coordinates the frozen model evaluates the bounded storage buffer in.
    fn collect_stale_dedup(
        &self,
        state: &EngineState,
        s: usize,
        start: usize,
        end: usize,
        needed: &mut BTreeSet<(usize, usize)>,
        queries: &mut Vec<WindowQuery>,
    ) -> usize {
        let avail = state.obs.available.series(s);
        let base = state.base();
        let mut fresh_hits = 0usize;
        for wj in state.grid.windows_overlapping(start, end) {
            let (lo, hi) = state.grid.bounds(wj);
            let (plo, phi) = (lo - base, hi - base);
            let slot = state.grid.slot(wj);
            if state.fresh[s][slot] {
                // Fully observed windows carry no imputations: not a hit.
                if avail[plo..phi].iter().any(|&a| !a) {
                    fresh_hits += 1;
                }
                continue;
            }
            if !needed.contains(&(s, slot)) {
                let positions: Vec<usize> = (plo..phi).filter(|&t| !avail[t]).collect();
                if positions.is_empty() {
                    continue; // fully observed, nothing to impute
                }
                needed.insert((s, slot));
                queries.push(WindowQuery { s, window_j: slot, positions });
            }
        }
        fresh_hits
    }

    /// Evaluates `queries` (physical coordinates) data-parallel over the
    /// frozen model, writes the predictions into the cache and marks the
    /// windows fresh. The capacity slack past the retained span is
    /// all-missing, so evaluating against the capacity-padded observed state
    /// is bitwise identical to evaluating against the retained span alone.
    ///
    /// Runs through the tape-free evaluator with the engine's long-lived
    /// scratch, so the serial cold-window path (small per-append
    /// micro-batches) stays allocation-lean after the first touch.
    ///
    /// This is also where the **output guard** lives: a window whose forward
    /// result carries any non-finite value (poisoned weights the construction
    /// gate missed, numeric blowup, an injected fault) never reaches the
    /// cache — the window's missing positions are filled with the
    /// mean-baseline level instead, its `degraded` bit is set (surfaced
    /// through [`ImputeResponse`] and [`ImputationEngine::health`]), and the
    /// next successful recompute heals it.
    fn compute_and_fill(&self, state: &mut EngineState, queries: &[WindowQuery]) {
        if queries.is_empty() {
            return;
        }
        let threads = mvi_parallel::current_threads();
        let mut scratch = self.scratch.take();
        let mut results = self.model.predict_batch_with(&mut scratch, &state.obs, queries, threads);
        // Return the scratch before the fault-injection seam runs: a hook
        // panic abandons nothing warm (the pool re-issues these buffers),
        // and a hook stall never pins scratch memory.
        self.scratch.put(scratch);
        // Fault-injection seam: the hook may panic (exercising the batcher's
        // supervisor and the poison-recovering lock), stall (deadlines), or
        // poison outputs (the guard below). `None` outside chaos tests.
        if let Some(hook) = state.eval_hook.as_mut() {
            hook(&mut results);
        }
        // Degrade/heal transitions are applied to the shard-guarded health
        // counters in one multi-shard acquisition (ascending, all guards
        // held together) after the cache writes, so a concurrent health
        // report sees either none or all of this batch's transitions.
        let mut deltas: BTreeMap<usize, (u64, i64)> = BTreeMap::new();
        for (q, vals) in queries.iter().zip(&results) {
            let intact = vals.len() == q.positions.len() && vals.iter().all(|v| v.is_finite());
            if intact {
                let series = state.imputed.series_mut(q.s);
                for (&t, &v) in q.positions.iter().zip(vals) {
                    series[t] = v;
                }
                if state.degraded[q.s][q.window_j] {
                    deltas.entry(self.shards.shard_of(q.s)).or_default().1 -= 1;
                }
                state.degraded[q.s][q.window_j] = false;
            } else {
                let level = state.baseline_level(q.s);
                let series = state.imputed.series_mut(q.s);
                for &t in &q.positions {
                    series[t] = level;
                }
                let delta = deltas.entry(self.shards.shard_of(q.s)).or_default();
                delta.0 += 1;
                if !state.degraded[q.s][q.window_j] {
                    delta.1 += 1;
                }
                state.degraded[q.s][q.window_j] = true;
            }
            state.fresh[q.s][q.window_j] = true;
        }
        if !deltas.is_empty() {
            let shards: BTreeSet<usize> = deltas.keys().copied().collect();
            for (idx, mut guard) in self.shards.lock_many(&shards) {
                let (events, gauge) = deltas[&idx];
                guard.degraded_events += events;
                guard.degraded_windows = (guard.degraded_windows as i64 + gauge).max(0) as u64;
            }
        }
        self.counters.windows_computed.fetch_add(queries.len() as u64, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepmvi::{DeepMviConfig, DeepMviModel};
    use mvi_data::generators::{generate_with_shape, DatasetName};
    use mvi_data::scenarios::Scenario;

    fn engine_fixture() -> (ObservedDataset, ImputationEngine) {
        let ds = generate_with_shape(DatasetName::Chlorine, &[4], 150, 7);
        let inst = Scenario::mcar(1.0).apply(&ds, 3);
        let obs = inst.observed();
        let cfg = DeepMviConfig { max_steps: 8, ..DeepMviConfig::tiny() };
        let mut model = DeepMviModel::new(&cfg, &obs);
        model.fit(&obs);
        let engine = ImputationEngine::new(model.freeze(), obs.clone()).unwrap();
        (obs, engine)
    }

    #[test]
    fn query_matches_batch_impute_and_hits_cache_on_repeat() {
        let (obs, engine) = engine_fixture();
        let full = engine.model().impute(&obs);
        let t = obs.t_len();
        for s in 0..obs.n_series() {
            let got = engine.query(s, 0, t).unwrap();
            assert_eq!(got, full.series(s), "series {s} diverged from batch impute");
        }
        let computed_cold = engine.stats().windows_computed;
        assert!(computed_cold > 0);
        // A second sweep is pure cache reads.
        for s in 0..obs.n_series() {
            engine.query(s, 0, t).unwrap();
        }
        assert_eq!(engine.stats().windows_computed, computed_cold, "repeat queries recomputed");
        assert!(engine.stats().window_hits > 0);
    }

    #[test]
    fn warm_up_precomputes_everything() {
        let (obs, engine) = engine_fixture();
        let warmed = engine.warm_up();
        assert!(warmed > 0);
        let before = engine.stats().windows_computed;
        engine.query(0, 0, obs.t_len()).unwrap();
        assert_eq!(engine.stats().windows_computed, before);
        assert_eq!(engine.cached_values(), engine.model().impute(&obs));
    }

    #[test]
    fn coalescing_shares_windows_across_overlapping_requests() {
        let (obs, engine) = engine_fixture();
        let t = obs.t_len();
        // Many overlapping requests over the same region in one batch.
        let reqs: Vec<ImputeRequest> =
            (0..6).map(|i| ImputeRequest { s: 1, start: i * 5, end: t / 2 + i * 5 }).collect();
        let results = engine.query_batch(&reqs);
        let computed = engine.stats().windows_computed;
        for (r, res) in reqs.iter().zip(&results) {
            let vals = res.as_ref().unwrap();
            assert_eq!(vals.len(), r.end - r.start);
        }
        // Without coalescing this would be ~6x the distinct-window count.
        let distinct = engine.grid().windows_overlapping(0, t / 2 + 25).len();
        assert!(
            computed as usize <= distinct,
            "computed {computed} windows for {distinct} distinct"
        );
    }

    #[test]
    fn invalid_requests_fail_cleanly_without_poisoning_the_batch() {
        let (obs, engine) = engine_fixture();
        let t = obs.t_len();
        let results = engine.query_batch(&[
            ImputeRequest { s: 99, start: 0, end: 10 },
            ImputeRequest { s: 0, start: 5, end: t + 1 },
            ImputeRequest { s: 0, start: 8, end: 4 },
            ImputeRequest { s: 2, start: 0, end: 10 },
        ]);
        assert!(matches!(results[0], Err(ServeError::Series { s: 99, .. })));
        assert!(matches!(results[1], Err(ServeError::Range { .. })));
        assert!(matches!(results[2], Err(ServeError::Range { .. })));
        assert!(results[3].is_ok());
    }

    #[test]
    fn geometry_mismatch_is_rejected_at_construction() {
        let (_, engine) = engine_fixture();
        let other = generate_with_shape(DatasetName::Chlorine, &[5], 150, 7);
        let other_obs = Scenario::mcar(1.0).apply(&other, 3).observed();
        let model = engine.model();
        let snap = crate::snapshot::ServeSnapshot::capture(model.model(), &engine.observed());
        assert!(matches!(snap.restore(&other_obs), Err(ServeError::Geometry(_))));
    }

    #[test]
    fn shorter_dataset_is_rejected_at_construction() {
        let ds = generate_with_shape(DatasetName::Gas, &[3], 100, 2);
        let obs = Scenario::mcar(1.0).apply(&ds, 5).observed();
        let cfg = DeepMviConfig { max_steps: 5, ..DeepMviConfig::tiny() };
        let mut model = DeepMviModel::new(&cfg, &obs);
        model.fit(&obs);
        let shorter = obs.truncated(60);
        assert!(matches!(
            ImputationEngine::new(model.freeze(), shorter),
            Err(ServeError::Geometry(_))
        ));
    }

    #[test]
    fn append_advances_watermark_and_grows_past_trained_capacity() {
        let ds = generate_with_shape(DatasetName::Gas, &[3], 100, 2);
        let mut obs = Scenario::mcar(1.0).apply(&ds, 5).observed();
        // Carve out a streaming future for series 1.
        obs.hide_range(1, 80, 100);
        let cfg = DeepMviConfig { max_steps: 5, ..DeepMviConfig::tiny() };
        let mut model = DeepMviModel::new(&cfg, &obs);
        model.fit(&obs);
        let engine = ImputationEngine::new(model.freeze(), obs).unwrap();

        assert_eq!(engine.watermark(1).unwrap(), 80);
        assert_eq!(engine.live_len(), 100);
        assert_eq!(engine.trained_len(), 100);
        let report = engine.append(1, &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(report.recorded, (80, 83));
        assert!(report.windows_recomputed > 0, "tail still has missing entries to refresh");
        assert_eq!(report.live_len, 100, "in-range append must not grow the series");
        assert_eq!(engine.watermark(1).unwrap(), 83);
        // Appended values are served back verbatim.
        assert_eq!(engine.query(1, 80, 83).unwrap(), vec![1.0, 2.0, 3.0]);

        // Appending past the trained capacity grows the series instead of
        // failing: the live grid extends and the values serve back verbatim.
        let burst: Vec<f64> = (0..40).map(|i| i as f64 / 7.0).collect();
        let report = engine.append(1, &burst).unwrap();
        assert_eq!(report.recorded, (83, 123));
        assert_eq!(report.live_len, 123);
        assert_eq!(engine.live_len(), 123);
        assert_eq!(engine.watermark(1).unwrap(), 123);
        assert_eq!(engine.grid().n_windows(), engine.grid().t_len().div_ceil(10));
        assert_eq!(engine.query(1, 83, 123).unwrap(), burst);
        // Sibling series grew too: their new suffix is imputable, not an error.
        let sibling_tail = engine.query(0, 100, 123).unwrap();
        assert_eq!(sibling_tail.len(), 23);
        assert!(sibling_tail.iter().all(|v| v.is_finite()));
        // The observed view reports the live length with the slack excluded.
        let observed = engine.observed();
        assert_eq!(observed.t_len(), 123);
        assert!(observed.available.series(0)[100..].iter().all(|&a| !a));
        // Queries past the live end still fail cleanly.
        assert!(matches!(engine.query(1, 0, 124), Err(ServeError::Range { .. })));
        assert!(matches!(engine.append(9, &[0.0]), Err(ServeError::Series { .. })));
    }

    #[test]
    fn repeated_small_appends_grow_storage_geometrically() {
        let ds = generate_with_shape(DatasetName::Gas, &[3], 60, 2);
        let obs = Scenario::mcar(1.0).apply(&ds, 5).observed();
        let cfg = DeepMviConfig { max_steps: 5, ..DeepMviConfig::tiny() };
        let mut model = DeepMviModel::new(&cfg, &obs);
        model.fit(&obs);
        let engine = ImputationEngine::new(model.freeze(), obs).unwrap();

        let start = engine.watermark(0).unwrap();
        for i in 0..90 {
            engine.append(0, &[(i as f64 / 11.0).sin()]).unwrap();
        }
        assert_eq!(engine.watermark(0).unwrap(), start + 90);
        assert!(engine.live_len() >= start + 90);
        // Served values reproduce the stream.
        let got = engine.query(0, start, start + 90).unwrap();
        let want: Vec<f64> = (0..90).map(|i| (i as f64 / 11.0).sin()).collect();
        assert_eq!(got, want);
        let stats = engine.stats();
        assert_eq!(stats.appends, 90);
        assert_eq!(stats.values_appended, 90);
    }

    #[test]
    fn retention_ring_bounds_storage_and_rejects_evicted_queries() {
        let ds = generate_with_shape(DatasetName::Gas, &[3], 100, 2);
        let obs = Scenario::mcar(1.0).apply(&ds, 5).observed();
        let cfg = DeepMviConfig { max_steps: 5, ..DeepMviConfig::tiny() };
        let mut model = DeepMviModel::new(&cfg, &obs);
        model.fit(&obs);
        let w = model.window();
        let retention = 3 * w; // three windows of history
        let engine = ImputationEngine::with_retention(model.freeze(), obs, retention).unwrap();
        let cap = engine.ring_capacity().unwrap();
        assert_eq!(cap, 4 * w, "three retained windows + one of slack");
        // Construction already evicted the 100-step dataset down to the cap.
        assert_eq!(engine.storage_capacity(), cap);
        assert_eq!(engine.retained_start(), 100 - cap);
        assert_eq!(engine.live_len(), 100);
        let initial_base = engine.retained_start();

        // Stream far past the cap: storage stays flat, logical time advances.
        for i in 0..30 {
            let vals: Vec<f64> = (0..7).map(|k| ((i * 7 + k) as f64 / 13.0).sin()).collect();
            let report = engine.append(0, &vals).unwrap();
            assert!(report.live_len - report.retained_start <= cap, "retained span blew the cap");
            assert!(engine.storage_capacity() <= cap, "storage grew past the ring cap");
        }
        let live = engine.live_len();
        let base = engine.retained_start();
        assert_eq!(live, 100 + 30 * 7);
        assert!(live - base >= retention, "retention floor violated");
        assert!(engine.stats().evictions > 0);
        // Construction-time trimming is not a streaming eviction; everything
        // since is accounted for step by step.
        assert_eq!(engine.stats().steps_evicted as usize, base - initial_base);
        assert_eq!(engine.watermark(0).unwrap(), live);
        // Sibling watermarks were dragged past the evicted span.
        assert!(engine.watermark(1).unwrap() >= base);

        // Retained queries serve; evicted time is a typed error, not data.
        let tail = engine.query(0, live - retention, live).unwrap();
        assert_eq!(tail.len(), retention);
        assert!(tail.iter().all(|v| v.is_finite()));
        let err = engine.query(0, base.saturating_sub(1), live).unwrap_err();
        assert_eq!(err, ServeError::Evicted { start: base - 1, end: live, retained_start: base });
        assert!(matches!(
            engine.fill_range(0, base - w, &[0.0; 2]),
            Err(ServeError::Evicted { .. })
        ));
        // The observed view is the retained span viewed standalone.
        let observed = engine.observed();
        assert_eq!(observed.t_len(), live - base);

        // The ring engine's cache over the retained span equals a batch
        // re-impute of that span as a standalone dataset (after healing).
        for s in 0..3 {
            engine.query(s, base, live).unwrap();
        }
        let healed = engine.cached_values();
        let oracle = engine.model().impute(&engine.observed());
        assert_eq!(healed.shape(), oracle.shape());
        for (a, b) in healed.data().iter().zip(oracle.data()) {
            assert!((a - b).abs() < 1e-9, "ring cache diverged from truncated re-impute");
        }
    }

    #[test]
    fn retention_smaller_than_one_window_still_works() {
        let ds = generate_with_shape(DatasetName::Gas, &[2], 60, 4);
        let obs = Scenario::mcar(1.0).apply(&ds, 9).observed();
        let cfg = DeepMviConfig { max_steps: 5, ..DeepMviConfig::tiny() };
        let mut model = DeepMviModel::new(&cfg, &obs);
        model.fit(&obs);
        let w = model.window();
        // Zero retention is rejected up front.
        let snap = crate::snapshot::ServeSnapshot::capture(&model, &obs);
        let spare = snap.restore(&obs).unwrap();
        assert!(matches!(
            ImputationEngine::with_retention(spare, obs.clone(), 0),
            Err(ServeError::Geometry(_))
        ));
        let engine = ImputationEngine::with_retention(model.freeze(), obs, 1).unwrap();
        assert_eq!(engine.ring_capacity(), Some(2 * w), "sub-window retention rounds to 2w");
        for i in 0..5 * w {
            engine.append(0, &[(i as f64 / 5.0).cos()]).unwrap();
            let span = engine.live_len() - engine.retained_start();
            assert!((1..=2 * w).contains(&span));
        }
        let live = engine.live_len();
        let got = engine.query(0, live - 1, live).unwrap();
        assert_eq!(got.len(), 1);
    }

    #[test]
    fn fill_range_backfills_an_interior_gap_the_watermark_passed() {
        let ds = generate_with_shape(DatasetName::Gas, &[3], 100, 2);
        let mut obs = Scenario::mcar(1.0).apply(&ds, 5).observed();
        // Hidden interior range with an observed tail: the watermark starts at
        // the end, so `append` can never reach the gap.
        obs.hide_range(1, 40, 60);
        obs.record_range(1, 90, &[5.0; 10]);
        let cfg = DeepMviConfig { max_steps: 5, ..DeepMviConfig::tiny() };
        let mut model = DeepMviModel::new(&cfg, &obs);
        model.fit(&obs);
        let engine = ImputationEngine::new(model.freeze(), obs).unwrap();
        assert_eq!(engine.watermark(1).unwrap(), 100);

        let late = [1.5; 20];
        let report = engine.fill_range(1, 40, &late).unwrap();
        assert_eq!(report.recorded, (40, 60));
        assert_eq!(report.live_len, 100);
        assert_eq!(engine.watermark(1).unwrap(), 100, "interior backfill must not move the cursor");
        assert_eq!(engine.query(1, 40, 60).unwrap(), late.to_vec());
        let stats = engine.stats();
        assert_eq!(stats.backfills, 1);
        assert_eq!(stats.values_backfilled, 20);
        // Out-of-range backfills are rejected; backfill never grows.
        assert!(matches!(engine.fill_range(1, 95, &[0.0; 10]), Err(ServeError::Range { .. })));
        assert!(matches!(engine.fill_range(7, 0, &[0.0]), Err(ServeError::Series { .. })));
    }
}
