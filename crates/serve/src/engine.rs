//! The online imputation engine: a warm frozen model plus the mutable serving
//! state (observed values, imputation cache, per-window freshness).
//!
//! ## Consistency model
//!
//! The engine keeps a full-tensor imputation cache guarded by one mutex, with
//! a per-`(series, window)` freshness bit. Queries serve fresh windows straight
//! from the cache; stale windows covering missing entries are recomputed on
//! demand — coalesced across a batch so overlapping requests share one forward
//! pass per window ([`ImputationEngine::query_batch`]).
//!
//! [`ImputationEngine::append`] records newly arrived values at a series'
//! write watermark and re-imputes only the **affected tail windows** instead of
//! the full tensor:
//!
//! * the appended series: every window from one window before the append
//!   onwards (the fine-grained local mean of §4.1.1 reaches `w` steps across a
//!   window boundary, so re-imputation starts one window early);
//! * sibling series: only windows overlapping the appended range — the kernel
//!   regression (§4.2) reads sibling values pointwise at the imputed position,
//!   and the temporal transformer and local mean never cross series.
//!
//! Windows of the appended series *before* the recomputed tail are marked
//! stale rather than recomputed: their attention context (up to `ctx_windows`
//! windows) may span the append, so they heal lazily on the next query that
//! touches them. Values recomputed by `append` are exactly what a full batch
//! re-impute over the current state would produce — the integration tests
//! assert equality to 1e-9.

use deepmvi::{FrozenModel, WindowQuery};
use mvi_data::dataset::ObservedDataset;
use mvi_data::windows::WindowGrid;
use mvi_tensor::Tensor;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Errors produced by the serving layer.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ServeError {
    /// Model/dataset geometry mismatch (wrong dims, series length, weights).
    Geometry(String),
    /// Series id outside the dataset.
    Series { s: usize, n_series: usize },
    /// Time range outside the series or inverted.
    Range { start: usize, end: usize, t_len: usize },
    /// Append past the end of the fixed-capacity series.
    AppendOverflow { watermark: usize, len: usize, t_len: usize },
    /// Snapshot parse/restore failure.
    Snapshot(String),
    /// The serving executor shut down before answering (transient: the
    /// request itself may be perfectly valid).
    Shutdown,
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Geometry(msg) => write!(f, "geometry mismatch: {msg}"),
            ServeError::Series { s, n_series } => {
                write!(f, "series {s} out of range (dataset has {n_series})")
            }
            ServeError::Range { start, end, t_len } => {
                write!(f, "range {start}..{end} invalid for series length {t_len}")
            }
            ServeError::AppendOverflow { watermark, len, t_len } => write!(
                f,
                "append of {len} values at watermark {watermark} exceeds series length {t_len}"
            ),
            ServeError::Snapshot(msg) => write!(f, "snapshot error: {msg}"),
            ServeError::Shutdown => write!(f, "serving executor shut down before answering"),
        }
    }
}

impl std::error::Error for ServeError {}

/// One imputation request: the fully-imputed values of `[start, end)` in
/// series `s` (observed entries pass through, missing entries are imputed).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ImputeRequest {
    /// Flat series id.
    pub s: usize,
    /// Range start (inclusive).
    pub start: usize,
    /// Range end (exclusive).
    pub end: usize,
}

/// What one [`ImputationEngine::append`] did.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AppendReport {
    /// The time range the new values were recorded into.
    pub recorded: (usize, usize),
    /// Windows re-imputed eagerly (appended series' tail + sibling overlaps).
    pub windows_recomputed: usize,
    /// Missing positions whose cached imputation was refreshed.
    pub positions_refreshed: usize,
    /// Windows of the appended series marked stale for lazy recomputation.
    pub windows_invalidated: usize,
}

/// Monotonic serving counters (lock-free reads; see
/// [`ImputationEngine::stats`]).
#[derive(Default)]
struct Counters {
    requests: AtomicU64,
    batches: AtomicU64,
    windows_computed: AtomicU64,
    window_hits: AtomicU64,
    appends: AtomicU64,
    values_appended: AtomicU64,
}

/// Point-in-time copy of the engine counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Requests served (each element of a batch counts once).
    pub requests: u64,
    /// Micro-batches executed (a single `query` counts as a batch of one).
    pub batches: u64,
    /// Window forward passes actually evaluated.
    pub windows_computed: u64,
    /// Windows with missing entries served from the warm cache without a
    /// forward pass (fully observed windows never count — they need neither
    /// cache nor compute).
    pub window_hits: u64,
    /// Successful appends.
    pub appends: u64,
    /// Total values recorded by appends.
    pub values_appended: u64,
}

/// Mutable serving state, guarded by the engine mutex.
struct EngineState {
    obs: ObservedDataset,
    /// Full-tensor cache: observed values + the latest imputations.
    imputed: Tensor,
    /// Freshness per `(series, window)`, row-major `[n_series][n_windows]`.
    fresh: Vec<bool>,
    /// Per-series write watermark: where the next append lands (one past the
    /// last observed entry).
    watermark: Vec<usize>,
}

/// The online imputation engine. Shareable across threads behind an `Arc`;
/// all methods take `&self`.
pub struct ImputationEngine {
    model: FrozenModel,
    grid: WindowGrid,
    n_series: usize,
    state: Mutex<EngineState>,
    counters: Counters,
}

impl ImputationEngine {
    /// Builds an engine over a frozen model and the current observed state of
    /// the dataset it serves. The imputation cache starts cold: every window
    /// containing missing entries is computed on first touch (or all at once
    /// via [`ImputationEngine::warm_up`]).
    ///
    /// # Errors
    /// [`ServeError::Geometry`] when `obs` does not match the geometry the
    /// model was built for.
    pub fn new(model: FrozenModel, obs: ObservedDataset) -> Result<Self, ServeError> {
        if obs.series_shape() != model.series_shape() || obs.t_len() != model.t_len() {
            return Err(ServeError::Geometry(format!(
                "observed dataset {:?}x{} does not match model {:?}x{}",
                obs.series_shape(),
                obs.t_len(),
                model.series_shape(),
                model.t_len()
            )));
        }
        let grid = model.grid();
        let n_series = obs.n_series();
        let watermark = (0..n_series)
            .map(|s| {
                let avail = obs.available.series(s);
                avail.iter().rposition(|&a| a).map_or(0, |t| t + 1)
            })
            .collect();
        let imputed = obs.values.clone();
        let fresh = vec![false; n_series * grid.n_windows()];
        let state = EngineState { obs, imputed, fresh, watermark };
        Ok(Self { model, grid, n_series, state: Mutex::new(state), counters: Counters::default() })
    }

    /// The frozen model this engine serves.
    pub fn model(&self) -> &FrozenModel {
        &self.model
    }

    /// The window grid of the served model.
    pub fn grid(&self) -> WindowGrid {
        self.grid
    }

    /// Computes every stale window with missing entries now, so subsequent
    /// queries are pure cache reads. Returns the number of windows computed.
    pub fn warm_up(&self) -> usize {
        let mut state = self.state.lock().expect("engine poisoned");
        let mut queries = Vec::new();
        for s in 0..self.n_series {
            self.collect_stale(&state, s, 0, self.grid.t_len(), &mut queries);
        }
        self.compute_and_fill(&mut state, &queries);
        queries.len()
    }

    /// Serves one request (a micro-batch of one); see
    /// [`ImputationEngine::query_batch`].
    ///
    /// # Errors
    /// [`ServeError::Series`] / [`ServeError::Range`] on an invalid request.
    pub fn query(&self, s: usize, start: usize, end: usize) -> Result<Vec<f64>, ServeError> {
        self.query_batch(&[ImputeRequest { s, start, end }]).pop().expect("one result")
    }

    /// Serves a micro-batch of requests: validates each, coalesces the stale
    /// windows the batch needs (deduplicated across overlapping requests),
    /// evaluates them in one data-parallel pass, then answers every request
    /// from the refreshed cache. Per-request errors do not poison the batch.
    pub fn query_batch(&self, requests: &[ImputeRequest]) -> Vec<Result<Vec<f64>, ServeError>> {
        let t_len = self.grid.t_len();
        self.counters.requests.fetch_add(requests.len() as u64, Ordering::Relaxed);
        self.counters.batches.fetch_add(1, Ordering::Relaxed);

        let validity: Vec<Result<(), ServeError>> = requests
            .iter()
            .map(|r| {
                if r.s >= self.n_series {
                    Err(ServeError::Series { s: r.s, n_series: self.n_series })
                } else if r.start > r.end || r.end > t_len {
                    Err(ServeError::Range { start: r.start, end: r.end, t_len })
                } else {
                    Ok(())
                }
            })
            .collect();

        let mut state = self.state.lock().expect("engine poisoned");
        let mut queries = Vec::new();
        let mut needed = BTreeSet::new();
        let mut hits = 0usize;
        for (r, ok) in requests.iter().zip(&validity) {
            if ok.is_ok() {
                hits += self.collect_stale_dedup(
                    &state,
                    r.s,
                    r.start,
                    r.end,
                    &mut needed,
                    &mut queries,
                );
            }
        }
        self.counters.window_hits.fetch_add(hits as u64, Ordering::Relaxed);
        self.compute_and_fill(&mut state, &queries);

        requests
            .iter()
            .zip(validity)
            .map(|(r, ok)| ok.map(|()| state.imputed.series(r.s)[r.start..r.end].to_vec()))
            .collect()
    }

    /// Records newly arrived values for series `s` at its write watermark and
    /// re-imputes the affected tail windows (see the module docs for the exact
    /// affected set). Returns what was recomputed.
    ///
    /// # Errors
    /// [`ServeError::Series`] for a bad id, [`ServeError::AppendOverflow`]
    /// when the values run past the fixed series capacity.
    pub fn append(&self, s: usize, values: &[f64]) -> Result<AppendReport, ServeError> {
        if s >= self.n_series {
            return Err(ServeError::Series { s, n_series: self.n_series });
        }
        let t_len = self.grid.t_len();
        let mut state = self.state.lock().expect("engine poisoned");
        let wm = state.watermark[s];
        let end = wm + values.len();
        if end > t_len {
            return Err(ServeError::AppendOverflow { watermark: wm, len: values.len(), t_len });
        }
        if values.is_empty() {
            return Ok(AppendReport {
                recorded: (wm, wm),
                windows_recomputed: 0,
                positions_refreshed: 0,
                windows_invalidated: 0,
            });
        }

        state.obs.record_range(s, wm, values);
        state.imputed.series_mut(s)[wm..end].copy_from_slice(values);
        state.watermark[s] = end;

        // Invalidate: the recorded range changes the forward inputs of every
        // window in the appended series' tail, of earlier windows of the same
        // series through the attention context, and of sibling windows
        // overlapping the range through the kernel regression.
        let tail = self.grid.tail_windows_for(wm);
        let n_windows = self.grid.n_windows();
        let mut invalidated = 0usize;
        for j in 0..tail.start {
            let slot = s * n_windows + j;
            if state.fresh[slot] {
                state.fresh[slot] = false;
                invalidated += 1;
            }
        }
        for j in tail.clone() {
            state.fresh[s * n_windows + j] = false;
        }
        for sib in 0..self.n_series {
            if sib != s {
                for j in self.grid.windows_overlapping(wm, end) {
                    state.fresh[sib * n_windows + j] = false;
                }
            }
        }

        // Eagerly re-impute the affected tail: the appended series from
        // `tail.start`, siblings only where they overlap the recorded range.
        let mut queries = Vec::new();
        let mut needed = BTreeSet::new();
        let (tail_lo, _) = self.grid.bounds(tail.start);
        self.collect_stale_dedup(&state, s, tail_lo, t_len, &mut needed, &mut queries);
        for sib in 0..self.n_series {
            if sib != s {
                self.collect_stale_dedup(&state, sib, wm, end, &mut needed, &mut queries);
            }
        }
        let positions_refreshed = queries.iter().map(|q| q.positions.len()).sum();
        let windows_recomputed = queries.len();
        self.compute_and_fill(&mut state, &queries);

        self.counters.appends.fetch_add(1, Ordering::Relaxed);
        self.counters.values_appended.fetch_add(values.len() as u64, Ordering::Relaxed);
        Ok(AppendReport {
            recorded: (wm, end),
            windows_recomputed,
            positions_refreshed,
            windows_invalidated: invalidated,
        })
    }

    /// The next write position of series `s`.
    ///
    /// # Errors
    /// [`ServeError::Series`] for a bad id.
    pub fn watermark(&self, s: usize) -> Result<usize, ServeError> {
        if s >= self.n_series {
            return Err(ServeError::Series { s, n_series: self.n_series });
        }
        Ok(self.state.lock().expect("engine poisoned").watermark[s])
    }

    /// A copy of the full imputation cache (observed values + latest
    /// imputations). Primarily for tests and offline comparison.
    pub fn cached_values(&self) -> Tensor {
        self.state.lock().expect("engine poisoned").imputed.clone()
    }

    /// A copy of the current observed state the engine serves.
    pub fn observed(&self) -> ObservedDataset {
        self.state.lock().expect("engine poisoned").obs.clone()
    }

    /// Point-in-time serving counters.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            requests: self.counters.requests.load(Ordering::Relaxed),
            batches: self.counters.batches.load(Ordering::Relaxed),
            windows_computed: self.counters.windows_computed.load(Ordering::Relaxed),
            window_hits: self.counters.window_hits.load(Ordering::Relaxed),
            appends: self.counters.appends.load(Ordering::Relaxed),
            values_appended: self.counters.values_appended.load(Ordering::Relaxed),
        }
    }

    /// Appends the stale windows with missing entries of series `s` inside
    /// `[start, end)` to `queries` (no dedup across calls).
    fn collect_stale(
        &self,
        state: &EngineState,
        s: usize,
        start: usize,
        end: usize,
        queries: &mut Vec<WindowQuery>,
    ) {
        let mut needed = BTreeSet::new();
        self.collect_stale_dedup(state, s, start, end, &mut needed, queries);
    }

    /// Like [`ImputationEngine::collect_stale`], but skips `(s, window)` pairs
    /// already in `needed` — the coalescing step that lets overlapping
    /// requests in one micro-batch share a single forward pass per window.
    /// Returns how many windows were skipped because they were fresh (cache
    /// hits — windows claimed by an earlier request in the batch are shared
    /// work, not hits).
    ///
    /// Freshness is checked per window *before* enumerating any positions, so
    /// the steady-state all-fresh request costs one bool scan per overlapped
    /// window and zero allocation. Queries always carry the full window's
    /// missing positions (the request range may clip the window, but the
    /// freshness bit covers all of it).
    fn collect_stale_dedup(
        &self,
        state: &EngineState,
        s: usize,
        start: usize,
        end: usize,
        needed: &mut BTreeSet<(usize, usize)>,
        queries: &mut Vec<WindowQuery>,
    ) -> usize {
        let n_windows = self.grid.n_windows();
        let avail = state.obs.available.series(s);
        let mut fresh_hits = 0usize;
        for wj in self.grid.windows_overlapping(start, end) {
            let (lo, hi) = self.grid.bounds(wj);
            if state.fresh[s * n_windows + wj] {
                // Fully observed windows carry no imputations: not a hit.
                if avail[lo..hi].iter().any(|&a| !a) {
                    fresh_hits += 1;
                }
                continue;
            }
            if !needed.contains(&(s, wj)) {
                let positions: Vec<usize> = (lo..hi).filter(|&t| !avail[t]).collect();
                if positions.is_empty() {
                    continue; // fully observed, nothing to impute
                }
                needed.insert((s, wj));
                queries.push(WindowQuery { s, window_j: wj, positions });
            }
        }
        fresh_hits
    }

    /// Evaluates `queries` data-parallel over the frozen model, writes the
    /// predictions into the cache and marks the windows fresh.
    fn compute_and_fill(&self, state: &mut EngineState, queries: &[WindowQuery]) {
        if queries.is_empty() {
            return;
        }
        let threads = mvi_parallel::current_threads();
        let results = self.model.predict_batch(&state.obs, queries, threads);
        let n_windows = self.grid.n_windows();
        let t_len = self.grid.t_len();
        for (q, vals) in queries.iter().zip(&results) {
            let base = q.s * t_len;
            for (&t, &v) in q.positions.iter().zip(vals) {
                state.imputed.data_mut()[base + t] = v;
            }
            state.fresh[q.s * n_windows + q.window_j] = true;
        }
        self.counters.windows_computed.fetch_add(queries.len() as u64, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use deepmvi::{DeepMviConfig, DeepMviModel};
    use mvi_data::generators::{generate_with_shape, DatasetName};
    use mvi_data::scenarios::Scenario;

    fn engine_fixture() -> (ObservedDataset, ImputationEngine) {
        let ds = generate_with_shape(DatasetName::Chlorine, &[4], 150, 7);
        let inst = Scenario::mcar(1.0).apply(&ds, 3);
        let obs = inst.observed();
        let cfg = DeepMviConfig { max_steps: 8, ..DeepMviConfig::tiny() };
        let mut model = DeepMviModel::new(&cfg, &obs);
        model.fit(&obs);
        let engine = ImputationEngine::new(model.freeze(), obs.clone()).unwrap();
        (obs, engine)
    }

    #[test]
    fn query_matches_batch_impute_and_hits_cache_on_repeat() {
        let (obs, engine) = engine_fixture();
        let full = engine.model().impute(&obs);
        let t = obs.t_len();
        for s in 0..obs.n_series() {
            let got = engine.query(s, 0, t).unwrap();
            assert_eq!(got, full.series(s), "series {s} diverged from batch impute");
        }
        let computed_cold = engine.stats().windows_computed;
        assert!(computed_cold > 0);
        // A second sweep is pure cache reads.
        for s in 0..obs.n_series() {
            engine.query(s, 0, t).unwrap();
        }
        assert_eq!(engine.stats().windows_computed, computed_cold, "repeat queries recomputed");
        assert!(engine.stats().window_hits > 0);
    }

    #[test]
    fn warm_up_precomputes_everything() {
        let (obs, engine) = engine_fixture();
        let warmed = engine.warm_up();
        assert!(warmed > 0);
        let before = engine.stats().windows_computed;
        engine.query(0, 0, obs.t_len()).unwrap();
        assert_eq!(engine.stats().windows_computed, before);
        assert_eq!(engine.cached_values(), engine.model().impute(&obs));
    }

    #[test]
    fn coalescing_shares_windows_across_overlapping_requests() {
        let (obs, engine) = engine_fixture();
        let t = obs.t_len();
        // Many overlapping requests over the same region in one batch.
        let reqs: Vec<ImputeRequest> =
            (0..6).map(|i| ImputeRequest { s: 1, start: i * 5, end: t / 2 + i * 5 }).collect();
        let results = engine.query_batch(&reqs);
        let computed = engine.stats().windows_computed;
        for (r, res) in reqs.iter().zip(&results) {
            let vals = res.as_ref().unwrap();
            assert_eq!(vals.len(), r.end - r.start);
        }
        // Without coalescing this would be ~6x the distinct-window count.
        let distinct = engine.grid().windows_overlapping(0, t / 2 + 25).len();
        assert!(
            computed as usize <= distinct,
            "computed {computed} windows for {distinct} distinct"
        );
    }

    #[test]
    fn invalid_requests_fail_cleanly_without_poisoning_the_batch() {
        let (obs, engine) = engine_fixture();
        let t = obs.t_len();
        let results = engine.query_batch(&[
            ImputeRequest { s: 99, start: 0, end: 10 },
            ImputeRequest { s: 0, start: 5, end: t + 1 },
            ImputeRequest { s: 0, start: 8, end: 4 },
            ImputeRequest { s: 2, start: 0, end: 10 },
        ]);
        assert!(matches!(results[0], Err(ServeError::Series { s: 99, .. })));
        assert!(matches!(results[1], Err(ServeError::Range { .. })));
        assert!(matches!(results[2], Err(ServeError::Range { .. })));
        assert!(results[3].is_ok());
    }

    #[test]
    fn geometry_mismatch_is_rejected_at_construction() {
        let (_, engine) = engine_fixture();
        let other = generate_with_shape(DatasetName::Chlorine, &[5], 150, 7);
        let other_obs = Scenario::mcar(1.0).apply(&other, 3).observed();
        let model = engine.model();
        let snap = crate::snapshot::ServeSnapshot::capture(model.model(), &engine.observed());
        assert!(matches!(snap.restore(&other_obs), Err(ServeError::Geometry(_))));
    }

    #[test]
    fn append_advances_watermark_and_respects_capacity() {
        let ds = generate_with_shape(DatasetName::Gas, &[3], 100, 2);
        let mut obs = Scenario::mcar(1.0).apply(&ds, 5).observed();
        // Carve out a streaming future for series 1.
        obs.hide_range(1, 80, 100);
        let cfg = DeepMviConfig { max_steps: 5, ..DeepMviConfig::tiny() };
        let mut model = DeepMviModel::new(&cfg, &obs);
        model.fit(&obs);
        let engine = ImputationEngine::new(model.freeze(), obs).unwrap();

        assert_eq!(engine.watermark(1).unwrap(), 80);
        let report = engine.append(1, &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(report.recorded, (80, 83));
        assert!(report.windows_recomputed > 0, "tail still has missing entries to refresh");
        assert_eq!(engine.watermark(1).unwrap(), 83);
        // Appended values are served back verbatim.
        assert_eq!(engine.query(1, 80, 83).unwrap(), vec![1.0, 2.0, 3.0]);
        // Capacity is enforced.
        let err = engine.append(1, &[0.0; 100]).unwrap_err();
        assert!(matches!(err, ServeError::AppendOverflow { watermark: 83, .. }));
        assert!(matches!(engine.append(9, &[0.0]), Err(ServeError::Series { .. })));
    }
}
