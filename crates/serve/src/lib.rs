//! **mvi-serve** — online imputation serving for trained DeepMVI models.
//!
//! The batch pipeline ([`deepmvi::DeepMvi`]) retrains from scratch and imputes
//! the whole tensor per call. This crate is the production-facing counterpart:
//! a trained model is loaded **once** into a warm cache and then serves many
//! cheap requests — the train/infer split of `deepmvi::infer` turned into an
//! engine.
//!
//! * [`ServeSnapshot`] — self-describing persistence: config + dataset
//!   geometry (trained, live *and* retained lengths) + weights
//!   (base64-packed, versioned v1–v4; v4 checksums every packed section) +
//!   trained std-dev, geometry-checked and finiteness-checked on restore;
//!   optionally the whole **warm serving cache**, so
//!   [`ImputationEngine::from_snapshot`] restarts a process that serves
//!   cached queries with zero forward passes. The [`durable`] layer persists
//!   snapshots to disk atomically with a whole-file digest and restores
//!   through an ordered fallback list
//!   ([`ImputationEngine::restore_with_fallback`]).
//! * [`ImputationEngine`] — the serving core: a full-tensor imputation cache
//!   with per-window freshness, coalesced micro-batch queries
//!   ([`ImputationEngine::query_batch`]), a streaming
//!   [`ImputationEngine::append`] that re-imputes only the affected tail
//!   windows instead of the full tensor — and **grows** the series when the
//!   stream runs past the trained length (rolling-horizon inference, no
//!   capacity wall) — plus [`ImputationEngine::fill_range`] for backfilling
//!   interior gaps the append watermark has already passed. Built
//!   [`ImputationEngine::with_retention`], it becomes a **bounded-memory
//!   ring**: the newest `retention_len` steps stay resident, appends past the
//!   cap evict the oldest span, and evicted time answers with the typed
//!   [`engine::ServeError::Evicted`].
//! * [`MicroBatcher`] / [`BatchClient`] — a thread front door: concurrent
//!   callers funnel into one executor that drains pending requests into
//!   coalesced batches. The worker is **supervised**: a panicking batch is
//!   caught and retried request-by-request (only the culprit answers
//!   [`engine::ServeError::Panicked`]), the bounded queue sheds load with
//!   [`engine::ServeError::Overloaded`], and per-request deadlines free stuck
//!   clients with [`engine::ServeError::DeadlineExceeded`].
//! * **Fault tolerance throughout** — every failure is a typed
//!   [`engine::ServeError`], never a panic, never silent wrong data: NaN/±inf
//!   payloads are refused before touching storage, a [`ValueGuard`]
//!   quarantines absurd-but-finite readings, non-finite forward outputs
//!   degrade their window to a flagged mean-baseline fallback
//!   ([`ImputationEngine::query_flagged`]) that heals on the next clean
//!   recompute, and [`ImputationEngine::health`] exposes the counters. With
//!   guards installed and not firing, served values are bitwise identical to
//!   the unguarded engine.
//! * [`ModelRegistry`] — multi-model tenancy: many engines registered under
//!   string tenant ids, a capacity-bounded LRU of resident engines with
//!   lossless snapshot-to-disk eviction and on-demand reload through the
//!   [`durable`] path, per-tenant health/stats carried across evictions, and
//!   typed errors ([`engine::ServeError::UnknownTenant`],
//!   [`engine::ServeError::TenantLoading`],
//!   [`engine::ServeError::RegistryFull`]) instead of blocking or dropping
//!   requests.
//! * **Sharded, lock-free warm reads** — engine state is split along the
//!   read/write axis: mutations stay sequenced on the core lock (DeepMVI's
//!   forward pass couples every series), while health counters shard per
//!   series and warm queries answer from per-series snapshots published
//!   through atomic cells — no mutex on the warm path at all, so concurrent
//!   queries never block appends to other series and never block each other.
//!   Warm reads linearize at their snapshot load; snapshots are published
//!   before each mutation returns, so reads always see completed writes.
//!   Single-threaded replay with the warm path on and off is bitwise
//!   identical ([`ImputationEngine::set_warm_reads`]).
//!
//! # Quickstart
//!
//! Train offline, snapshot, serve online:
//!
//! ```
//! use deepmvi::{DeepMviConfig, DeepMviModel};
//! use mvi_data::generators::{generate_with_shape, DatasetName};
//! use mvi_data::scenarios::Scenario;
//! use mvi_serve::{ImputationEngine, ServeSnapshot};
//!
//! // Offline: train on the observed data and persist a snapshot.
//! let ds = generate_with_shape(DatasetName::Gas, &[3], 120, 4);
//! let obs = Scenario::mcar(1.0).apply(&ds, 1).observed();
//! let cfg = DeepMviConfig { max_steps: 5, ..DeepMviConfig::tiny() };
//! let mut model = DeepMviModel::new(&cfg, &obs);
//! model.fit(&obs);
//! let json = ServeSnapshot::capture(&model, &obs).to_json();
//!
//! // Online: rehydrate into an engine and serve.
//! let snapshot = ServeSnapshot::from_json(&json).unwrap();
//! let frozen = snapshot.restore(&obs).unwrap();
//! let engine = ImputationEngine::new(frozen, obs.clone()).unwrap();
//!
//! // Point queries impute on demand (and cache per window) ...
//! let head = engine.query(0, 0, 40).unwrap();
//! assert_eq!(head.len(), 40);
//! // ... new observations re-impute only the affected tail windows, and the
//! // stream may run past the trained length — the series grows instead of
//! // erroring, with windows beyond training served by a rolling horizon.
//! engine.append(0, &vec![0.25; 140 - engine.watermark(0).unwrap()]).unwrap();
//! assert_eq!(engine.live_len(), 140);
//! assert_eq!(engine.trained_len(), 120);
//! let grown_tail = engine.query(0, 120, 140).unwrap();
//! assert_eq!(grown_tail.len(), 20);
//! ```
//!
//! For concurrent callers, wrap the engine in a [`MicroBatcher`] and hand each
//! thread a [`BatchClient`]. For bounded memory on unbounded streams, build
//! with [`ImputationEngine::with_retention`]; for warm restarts, persist
//! [`ImputationEngine::snapshot`] and rebuild with
//! [`ImputationEngine::from_snapshot`] — or durably on disk with
//! [`ImputationEngine::snapshot_to_path`] /
//! [`ImputationEngine::restore_with_fallback`]. See the `online_serving`
//! example for an end-to-end tour, `ARCHITECTURE.md` for where the engine
//! sits in the system (including the failure-domain map and the shard map),
//! `tests/serve_faults.rs` for the fault-injection suite,
//! `tests/serve_concurrency.rs` for the concurrency stress +
//! linearizability suite, and `serve_bench` for the methodology behind
//! `BENCH_2.json`, `BENCH_3.json`, `BENCH_5.json`, `BENCH_6.json` and
//! `BENCH_7.json` (documented in `PERFORMANCE.md`).

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod batch;
pub mod durable;
pub mod engine;
pub mod registry;
pub(crate) mod shard;
pub mod snapshot;

pub use batch::{BatchClient, BatcherConfig, MicroBatcher};
pub use engine::{
    AppendReport, EngineOptions, EngineStats, EvalHook, HealthReport, ImputationEngine,
    ImputeRequest, ImputeResponse, ServeError, ValueGuard,
};
pub use registry::{LoadHook, ModelRegistry, RegistryConfig, RegistryStats};
pub use snapshot::ServeSnapshot;
