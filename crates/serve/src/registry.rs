//! Multi-model tenancy: a capacity-bounded registry of serving engines.
//!
//! One process, many models. A [`ModelRegistry`] maps string **tenant ids**
//! to [`ImputationEngine`]s and keeps at most `capacity` of them resident at
//! once; everything else lives as a durable snapshot on disk (the
//! [`crate::durable`] framed format) and is reloaded on demand:
//!
//! * **register** — an engine enters resident under its tenant id
//!   ([`ModelRegistry::register`]), or cold as a snapshot path
//!   ([`ModelRegistry::register_spilled`]) that the first request will load.
//! * **get** — [`ModelRegistry::get`] resolves a tenant to its engine. A
//!   resident tenant is a warm hit (and bumps its LRU recency). A spilled
//!   tenant triggers an on-demand load: the slot is marked loading, the
//!   snapshot is read and restored *outside* the registry lock (warm gets
//!   for other tenants are never blocked by a load), and the engine becomes
//!   resident. Concurrent callers racing that load are answered with the
//!   typed [`ServeError::TenantLoading`] — the request was not executed, so
//!   it is safe to retry after a short backoff.
//! * **evict** — when a register or load needs a slot and the registry is at
//!   capacity, the least-recently-used resident engine is **snapshotted to
//!   disk and then dropped** ([`ModelRegistry::evict`] does the same on
//!   demand). Eviction is lossless by construction: the spilled snapshot
//!   carries the full warm serving state, so a later request reloads an
//!   engine that answers bitwise-identically.
//! * **typed failure** — an unregistered tenant is
//!   [`ServeError::UnknownTenant`]; when every slot is pinned by an
//!   in-flight load and nothing can be evicted, the registry answers
//!   [`ServeError::RegistryFull`] instead of blocking or panicking.
//!
//! ## Health and stats survive eviction
//!
//! Engine health counters ([`HealthReport`]) and serving counters
//! ([`EngineStats`]) live in the engine, and a fresh engine restored from a
//! snapshot starts them at zero. The registry therefore **carries** each
//! tenant's monotonic counters across residencies: on eviction the outgoing
//! engine's counters are folded into the tenant's carried totals, and
//! [`ModelRegistry::tenant_health`] / [`ModelRegistry::tenant_stats`] report
//! carried + live. An evict→reload cycle preserves every monotonic counter
//! exactly (the `tests/registry.rs` proptest pins this); the one gauge,
//! `degraded_windows`, reflects only the currently-resident engine.
//!
//! ## Locking
//!
//! The registry owns a single tenants mutex, held only for map bookkeeping —
//! never across a snapshot *load* (loads run outside the lock behind a
//! per-tenant loading marker). Eviction's snapshot write does run under the
//! lock: eviction is rare and the write is bounded, and holding the lock
//! keeps "resident + loading ≤ capacity" a hard invariant. The registry
//! takes no engine locks itself; per-engine calls (`health`, `snapshot`)
//! follow the engine's own `core → shard → poison` protocol internally.

use crate::engine::{EngineStats, HealthReport, ServeError};
use crate::ImputationEngine;
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Test-harness hook invoked on the loading thread after a tenant's slot is
/// marked loading and before its snapshot file is read. The fault and
/// concurrency suites gate this on a barrier to hold the loading state open
/// deterministically (the registry counterpart of
/// [`crate::engine::EvalHook`]).
pub type LoadHook = Box<dyn Fn(&str) + Send + Sync>;

/// Tuning for [`ModelRegistry::new`].
#[derive(Clone, Debug)]
pub struct RegistryConfig {
    /// Maximum engines resident (or mid-load) at once. A get or register
    /// that needs a slot beyond this evicts the least-recently-used resident
    /// engine; with nothing evictable it answers
    /// [`ServeError::RegistryFull`]. Zero admits nothing.
    pub capacity: usize,
    /// Directory evicted tenants' snapshots are spilled into (created on
    /// first use).
    pub spill_dir: PathBuf,
}

impl RegistryConfig {
    /// A config with the given resident capacity and spill directory.
    pub fn new(capacity: usize, spill_dir: impl Into<PathBuf>) -> Self {
        Self { capacity, spill_dir: spill_dir.into() }
    }
}

/// Point-in-time registry counters ([`ModelRegistry::stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Tenants ever registered (monotonic; re-registering counts once).
    pub registered: u64,
    /// Snapshot loads completed by on-demand gets (monotonic).
    pub loads: u64,
    /// On-demand loads that failed (corrupt/missing snapshot; monotonic).
    pub load_failures: u64,
    /// Evictions performed — snapshot written, engine dropped (monotonic).
    pub evictions: u64,
    /// Gets answered by an already-resident engine (monotonic).
    pub hits: u64,
    /// Tenants currently resident.
    pub resident: usize,
    /// Tenants currently mid-load.
    pub loading: usize,
    /// Tenants currently spilled to disk.
    pub spilled: usize,
    /// The configured resident capacity.
    pub capacity: usize,
}

/// Where one tenant's engine currently lives.
enum SlotState {
    /// Warm: the engine is in memory; `last_used` orders LRU eviction.
    Resident { engine: Arc<ImputationEngine>, last_used: u64 },
    /// A thread is loading the snapshot right now (outside the lock); the
    /// slot is pinned — it cannot be evicted, re-registered or double-loaded.
    Loading,
    /// Cold: only the durable snapshot at `path` exists.
    Spilled { path: PathBuf },
}

/// One tenant: its engine (in whatever state) plus the counters carried
/// across residencies.
struct TenantSlot {
    state: SlotState,
    /// Monotonic health counters accumulated by engines that were since
    /// evicted or replaced (the `degraded_windows` gauge is never carried).
    carried_health: HealthReport,
    /// Monotonic serving counters accumulated the same way.
    carried_stats: EngineStats,
}

impl TenantSlot {
    fn fresh(state: SlotState) -> Self {
        Self {
            state,
            carried_health: HealthReport::default(),
            carried_stats: EngineStats::default(),
        }
    }

    /// Folds a departing engine's counters into the carried totals.
    fn absorb(&mut self, engine: &ImputationEngine) {
        add_health(&mut self.carried_health, &engine.health());
        add_stats(&mut self.carried_stats, &engine.stats());
    }
}

/// Adds `live`'s monotonic counters onto `acc` (element-wise for the
/// per-series quarantine vector; the `degraded_windows` gauge is summed too —
/// callers that fold a *departing* engine zero it afterwards via
/// [`TenantSlot::absorb`]'s contract that carried gauges stay zero).
fn add_health(acc: &mut HealthReport, live: &HealthReport) {
    if acc.quarantined_by_series.len() < live.quarantined_by_series.len() {
        acc.quarantined_by_series.resize(live.quarantined_by_series.len(), 0);
    }
    for (a, l) in acc.quarantined_by_series.iter_mut().zip(&live.quarantined_by_series) {
        *a += l;
    }
    acc.quarantined += live.quarantined;
    acc.nonfinite_input_rejections += live.nonfinite_input_rejections;
    acc.degraded_events += live.degraded_events;
    acc.poison_recoveries += live.poison_recoveries;
    // `degraded_windows` is a gauge over the live engine's cache, not a
    // monotonic counter: a reloaded engine re-derives it from its snapshot,
    // so carrying it would double-count. Live-only by design.
}

fn add_stats(acc: &mut EngineStats, live: &EngineStats) {
    acc.requests += live.requests;
    acc.batches += live.batches;
    acc.windows_computed += live.windows_computed;
    acc.window_hits += live.window_hits;
    acc.appends += live.appends;
    acc.values_appended += live.values_appended;
    acc.backfills += live.backfills;
    acc.values_backfilled += live.values_backfilled;
    acc.evictions += live.evictions;
    acc.steps_evicted += live.steps_evicted;
}

/// The tenant map plus the LRU clock, all under one mutex.
struct Tenants {
    slots: HashMap<String, TenantSlot>,
    /// Bumped on every touch; resident slots record it as `last_used`, and
    /// the minimum over residents is the LRU eviction victim.
    clock: u64,
}

impl Tenants {
    /// Slots currently holding (or reserving) a resident place.
    fn occupied(&self) -> usize {
        self.slots
            .values()
            .filter(|s| matches!(s.state, SlotState::Resident { .. } | SlotState::Loading))
            .count()
    }
}

/// A capacity-bounded, LRU-evicting map from tenant ids to serving engines;
/// see the [module docs](self) for the lifecycle. All methods take `&self`
/// and are safe to call from many threads.
pub struct ModelRegistry {
    config: RegistryConfig,
    tenants: Mutex<Tenants>,
    /// Arc'd so a running hook never holds the mutex: `set_load_hook` can
    /// replace or clear it mid-run, and the change sticks.
    load_hook: Mutex<Option<Arc<LoadHook>>>,
    registered: AtomicU64,
    loads: AtomicU64,
    load_failures: AtomicU64,
    evictions: AtomicU64,
    hits: AtomicU64,
}

/// Poison-tolerant lock: registry bookkeeping is a plain map, always valid,
/// so a panic elsewhere must not wedge every tenant behind a poisoned mutex.
fn guard<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

impl ModelRegistry {
    /// An empty registry with the given capacity and spill directory.
    pub fn new(config: RegistryConfig) -> Self {
        Self {
            config,
            tenants: Mutex::new(Tenants { slots: HashMap::new(), clock: 0 }),
            load_hook: Mutex::new(None),
            registered: AtomicU64::new(0),
            loads: AtomicU64::new(0),
            load_failures: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            hits: AtomicU64::new(0),
        }
    }

    /// The configured resident capacity.
    pub fn capacity(&self) -> usize {
        self.config.capacity
    }

    /// Registers (or replaces) `tenant`'s engine as resident, evicting the
    /// LRU resident if the registry is at capacity. Replacing an existing
    /// resident engine folds its counters into the tenant's carried totals
    /// first, so health history survives the swap.
    ///
    /// # Errors
    /// [`ServeError::RegistryFull`] when no slot can be freed;
    /// [`ServeError::TenantLoading`] when the tenant is mid-load (the load
    /// owns the slot);
    /// [`ServeError::Snapshot`] when making room required an eviction whose
    /// snapshot write failed (the victim stays resident).
    pub fn register(&self, tenant: &str, engine: Arc<ImputationEngine>) -> Result<(), ServeError> {
        let mut t = guard(&self.tenants);
        t.clock += 1;
        let now = t.clock;
        let needs_room = match t.slots.get(tenant) {
            Some(slot) => match slot.state {
                SlotState::Loading => {
                    return Err(ServeError::TenantLoading { tenant: tenant.to_string() })
                }
                // Replacing in place: the slot already holds its residency.
                SlotState::Resident { .. } => false,
                SlotState::Spilled { .. } => true,
            },
            None => true,
        };
        if needs_room {
            self.make_room(&mut t)?;
        }
        match t.slots.get_mut(tenant) {
            Some(slot) => {
                if let SlotState::Resident { engine: old, .. } = &slot.state {
                    let old = Arc::clone(old);
                    slot.absorb(&old);
                }
                slot.state = SlotState::Resident { engine, last_used: now };
            }
            None => {
                t.slots.insert(
                    tenant.to_string(),
                    TenantSlot::fresh(SlotState::Resident { engine, last_used: now }),
                );
                self.registered.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(())
    }

    /// Registers `tenant` cold: only the snapshot at `path` exists, and the
    /// first [`ModelRegistry::get`] loads it. Registering over a resident
    /// engine folds that engine's counters into the carried totals and drops
    /// it (a demotion to disk — the given snapshot becomes the truth).
    ///
    /// # Errors
    /// [`ServeError::Snapshot`] when `path` is not a readable file;
    /// [`ServeError::TenantLoading`] when the tenant is mid-load.
    pub fn register_spilled(
        &self,
        tenant: &str,
        path: impl Into<PathBuf>,
    ) -> Result<(), ServeError> {
        let path = path.into();
        if !path.is_file() {
            return Err(ServeError::Snapshot(format!(
                "tenant `{tenant}`: snapshot `{}` is not a readable file",
                path.display()
            )));
        }
        let mut t = guard(&self.tenants);
        match t.slots.get_mut(tenant) {
            Some(slot) => {
                if matches!(slot.state, SlotState::Loading) {
                    return Err(ServeError::TenantLoading { tenant: tenant.to_string() });
                }
                if let SlotState::Resident { engine: old, .. } = &slot.state {
                    let old = Arc::clone(old);
                    slot.absorb(&old);
                }
                slot.state = SlotState::Spilled { path };
            }
            None => {
                t.slots.insert(tenant.to_string(), TenantSlot::fresh(SlotState::Spilled { path }));
                self.registered.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(())
    }

    /// Resolves `tenant` to its engine: a warm hit for resident tenants, an
    /// on-demand snapshot load for spilled ones (run outside the registry
    /// lock; see the module docs).
    ///
    /// # Errors
    /// [`ServeError::UnknownTenant`] for ids never registered;
    /// [`ServeError::TenantLoading`] while another caller's load is in
    /// flight; [`ServeError::RegistryFull`] when loading would need a slot
    /// and nothing is evictable; [`ServeError::Corrupt`] /
    /// [`ServeError::Snapshot`] when the spilled snapshot fails to load (the
    /// tenant stays spilled; the error names what broke).
    pub fn get(&self, tenant: &str) -> Result<Arc<ImputationEngine>, ServeError> {
        let path = {
            let mut t = guard(&self.tenants);
            t.clock += 1;
            let now = t.clock;
            let Some(slot) = t.slots.get_mut(tenant) else {
                return Err(ServeError::UnknownTenant { tenant: tenant.to_string() });
            };
            match &mut slot.state {
                SlotState::Resident { engine, last_used } => {
                    *last_used = now;
                    let engine = Arc::clone(engine);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(engine);
                }
                SlotState::Loading => {
                    return Err(ServeError::TenantLoading { tenant: tenant.to_string() });
                }
                SlotState::Spilled { path } => path.clone(),
            }
        };
        // The slot is spilled: reserve a residency slot under the lock, then
        // load outside it so other tenants' warm gets proceed unblocked.
        {
            let mut t = guard(&self.tenants);
            // Re-check: another thread may have loaded (or started loading)
            // between the two critical sections.
            match t.slots.get(tenant).map(|s| &s.state) {
                Some(SlotState::Resident { engine, .. }) => {
                    let engine = Arc::clone(engine);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(engine);
                }
                Some(SlotState::Loading) => {
                    return Err(ServeError::TenantLoading { tenant: tenant.to_string() });
                }
                Some(SlotState::Spilled { .. }) => {}
                None => {
                    return Err(ServeError::UnknownTenant { tenant: tenant.to_string() });
                }
            }
            self.make_room(&mut t)?;
            if let Some(slot) = t.slots.get_mut(tenant) {
                slot.state = SlotState::Loading;
            }
        }
        self.run_load_hook(tenant);
        let loaded = ImputationEngine::from_snapshot_path(&path);
        let mut t = guard(&self.tenants);
        t.clock += 1;
        let now = t.clock;
        match loaded {
            Ok(engine) => {
                let engine = Arc::new(engine);
                let state = SlotState::Resident { engine: Arc::clone(&engine), last_used: now };
                match t.slots.get_mut(tenant) {
                    Some(slot) => slot.state = state,
                    None => {
                        t.slots.insert(tenant.to_string(), TenantSlot::fresh(state));
                    }
                }
                self.loads.fetch_add(1, Ordering::Relaxed);
                Ok(engine)
            }
            Err(e) => {
                // The load failed: release the reserved slot back to spilled
                // so a later attempt (or a fixed snapshot) can retry.
                if let Some(slot) = t.slots.get_mut(tenant) {
                    slot.state = SlotState::Spilled { path };
                }
                self.load_failures.fetch_add(1, Ordering::Relaxed);
                Err(e)
            }
        }
    }

    /// Evicts `tenant` now: snapshot to disk, drop the engine, return the
    /// spill path. Idempotent on already-spilled tenants (returns their
    /// existing path).
    ///
    /// # Errors
    /// [`ServeError::UnknownTenant`] / [`ServeError::TenantLoading`] as for
    /// [`ModelRegistry::get`]; [`ServeError::Snapshot`] when the snapshot
    /// write fails (the tenant stays resident — eviction never loses state).
    pub fn evict(&self, tenant: &str) -> Result<PathBuf, ServeError> {
        let mut t = guard(&self.tenants);
        match t.slots.get(tenant).map(|s| &s.state) {
            None => Err(ServeError::UnknownTenant { tenant: tenant.to_string() }),
            Some(SlotState::Loading) => {
                Err(ServeError::TenantLoading { tenant: tenant.to_string() })
            }
            Some(SlotState::Spilled { path }) => Ok(path.clone()),
            Some(SlotState::Resident { .. }) => {
                let key = tenant.to_string();
                self.evict_slot(&mut t, &key)
            }
        }
    }

    /// Every registered tenant id (resident, loading and spilled), sorted.
    pub fn tenants(&self) -> Vec<String> {
        let t = guard(&self.tenants);
        let mut ids: Vec<String> = t.slots.keys().cloned().collect();
        ids.sort();
        ids
    }

    /// Whether `tenant` is registered in any state.
    pub fn contains(&self, tenant: &str) -> bool {
        guard(&self.tenants).slots.contains_key(tenant)
    }

    /// Registered tenants in any state.
    pub fn len(&self) -> usize {
        guard(&self.tenants).slots.len()
    }

    /// Whether no tenant is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Tenants currently resident in memory.
    pub fn resident_count(&self) -> usize {
        let t = guard(&self.tenants);
        t.slots.values().filter(|s| matches!(s.state, SlotState::Resident { .. })).count()
    }

    /// Point-in-time registry counters.
    pub fn stats(&self) -> RegistryStats {
        let t = guard(&self.tenants);
        let mut resident = 0usize;
        let mut loading = 0usize;
        let mut spilled = 0usize;
        for slot in t.slots.values() {
            match slot.state {
                SlotState::Resident { .. } => resident += 1,
                SlotState::Loading => loading += 1,
                SlotState::Spilled { .. } => spilled += 1,
            }
        }
        RegistryStats {
            registered: self.registered.load(Ordering::Relaxed),
            loads: self.loads.load(Ordering::Relaxed),
            load_failures: self.load_failures.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            resident,
            loading,
            spilled,
            capacity: self.config.capacity,
        }
    }

    /// `tenant`'s health: counters carried across evictions plus the live
    /// engine's, when resident (a spilled/loading tenant reports its carried
    /// totals). The `degraded_windows` gauge reflects only a resident engine.
    ///
    /// # Errors
    /// [`ServeError::UnknownTenant`] for ids never registered.
    pub fn tenant_health(&self, tenant: &str) -> Result<HealthReport, ServeError> {
        let t = guard(&self.tenants);
        let Some(slot) = t.slots.get(tenant) else {
            return Err(ServeError::UnknownTenant { tenant: tenant.to_string() });
        };
        let mut report = slot.carried_health.clone();
        if let SlotState::Resident { engine, .. } = &slot.state {
            let live = engine.health();
            add_health(&mut report, &live);
            report.degraded_windows = live.degraded_windows;
        }
        Ok(report)
    }

    /// `tenant`'s serving counters, carried + live as for
    /// [`ModelRegistry::tenant_health`].
    ///
    /// # Errors
    /// [`ServeError::UnknownTenant`] for ids never registered.
    pub fn tenant_stats(&self, tenant: &str) -> Result<EngineStats, ServeError> {
        let t = guard(&self.tenants);
        let Some(slot) = t.slots.get(tenant) else {
            return Err(ServeError::UnknownTenant { tenant: tenant.to_string() });
        };
        let mut stats = slot.carried_stats;
        if let SlotState::Resident { engine, .. } = &slot.state {
            add_stats(&mut stats, &engine.stats());
        }
        Ok(stats)
    }

    /// The whole registry's health: every tenant's carried counters plus
    /// every resident engine's live ones, summed (per-series quarantine
    /// vectors sum element-wise over the longest series axis).
    pub fn aggregate_health(&self) -> HealthReport {
        let t = guard(&self.tenants);
        let mut report = HealthReport::default();
        for slot in t.slots.values() {
            add_health(&mut report, &slot.carried_health);
            if let SlotState::Resident { engine, .. } = &slot.state {
                let live = engine.health();
                add_health(&mut report, &live);
                report.degraded_windows += live.degraded_windows;
            }
        }
        report
    }

    /// Installs (or clears) the [`LoadHook`]; see its docs. Test harness
    /// only — production registries leave it unset.
    pub fn set_load_hook(&self, hook: Option<LoadHook>) {
        *guard(&self.load_hook) = hook.map(Arc::new);
    }

    fn run_load_hook(&self, tenant: &str) {
        // Clone the hook out and drop the guard before calling it: a gated
        // hook must not hold the mutex against `set_load_hook`, and a
        // replace/clear that lands mid-run must stick.
        let hook = guard(&self.load_hook).clone();
        if let Some(hook) = hook {
            hook(tenant);
        }
    }

    /// Frees residency slots until `occupied < capacity` (so one more slot
    /// can be taken), evicting least-recently-used residents.
    fn make_room(&self, t: &mut Tenants) -> Result<(), ServeError> {
        while t.occupied() >= self.config.capacity {
            let victim = t
                .slots
                .iter()
                .filter_map(|(key, slot)| match slot.state {
                    SlotState::Resident { last_used, .. } => Some((last_used, key.clone())),
                    _ => None,
                })
                .min();
            let Some((_, key)) = victim else {
                return Err(ServeError::RegistryFull { capacity: self.config.capacity });
            };
            self.evict_slot(t, &key)?;
        }
        Ok(())
    }

    /// Snapshots the resident engine under `key` to its spill path, folds
    /// its counters into the carried totals, and drops it. On a failed
    /// snapshot write the tenant stays resident and the error propagates.
    fn evict_slot(&self, t: &mut Tenants, key: &str) -> Result<PathBuf, ServeError> {
        let Some(slot) = t.slots.get_mut(key) else {
            return Err(ServeError::UnknownTenant { tenant: key.to_string() });
        };
        let SlotState::Resident { engine, .. } = &slot.state else {
            return Err(ServeError::UnknownTenant { tenant: key.to_string() });
        };
        std::fs::create_dir_all(&self.config.spill_dir).map_err(|e| {
            ServeError::Snapshot(format!(
                "cannot create spill directory `{}`: {e}",
                self.config.spill_dir.display()
            ))
        })?;
        let path = spill_path(&self.config.spill_dir, key);
        engine.snapshot_to_path(&path)?;
        let engine = Arc::clone(engine);
        slot.absorb(&engine);
        slot.state = SlotState::Spilled { path: path.clone() };
        drop(engine);
        self.evictions.fetch_add(1, Ordering::Relaxed);
        Ok(path)
    }
}

impl std::fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("ModelRegistry")
            .field("capacity", &self.config.capacity)
            .field("spill_dir", &self.config.spill_dir)
            .field("resident", &stats.resident)
            .field("loading", &stats.loading)
            .field("spilled", &stats.spilled)
            .finish()
    }
}

/// The spill file for `tenant`: filesystem-hostile characters are replaced
/// and a digest of the raw id is appended, so distinct tenants can never
/// collide on one file no matter what their ids contain.
fn spill_path(dir: &Path, tenant: &str) -> PathBuf {
    let mut stem = String::with_capacity(tenant.len().min(48));
    for c in tenant.chars().take(48) {
        stem.push(if c.is_ascii_alphanumeric() || c == '-' || c == '_' { c } else { '_' });
    }
    let digest = crate::durable::crc32(tenant.as_bytes());
    dir.join(format!("{stem}-{digest:08x}.mvisnap"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spill_paths_are_sanitized_and_collision_free() {
        let dir = Path::new("/tmp/reg");
        let a = spill_path(dir, "acme/../../etc");
        let text = a.to_string_lossy().into_owned();
        assert!(!text.contains(".."), "path traversal must be neutralized: {text}");
        // Two ids that sanitize identically still get distinct files.
        let b = spill_path(dir, "a/b");
        let c = spill_path(dir, "a.b");
        assert_ne!(b, c, "digest must disambiguate sanitized collisions");
    }
}
