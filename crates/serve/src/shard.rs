//! Sharded serving state: per-shard health counters and the lock-free
//! publication cells behind the engine's warm read path.
//!
//! The engine's *write* path stays serialized behind the core state mutex —
//! DeepMVI's forward pass couples every series (the kernel regression reads
//! sibling values pointwise), so every mutation is inherently cross-series
//! work and needs a consistent multi-series view. What this module shards is
//! everything a *read* needs:
//!
//! * **Warm snapshots** — one [`Published`] cell per series holding an
//!   `Arc<SeriesSnap>`: the imputed values over the retained span plus
//!   per-window freshness/degradation/has-missing bits. Mutations republish
//!   the affected series *before* releasing the core lock (and therefore
//!   before returning to their caller), so a read that starts after a
//!   mutation completed always observes it — the linearization point of a
//!   warm read is its single atomic pointer load.
//! * **Health counters** — hash-sharded behind shard-local mutexes so
//!   concurrent mutators on different shards never contend, while
//!   [`crate::ImputationEngine::health`] can take *all* shard locks at once
//!   (ascending order) for a true point-in-time aggregate.
//!
//! ## Lock ordering protocol
//!
//! `core state mutex → shard locks (ascending index) → poison counter`.
//! Holding a prefix and skipping levels is fine; acquiring a lower level
//! while holding a higher one is not. Any operation touching several shards
//! acquires all of them ascending and holds them together for its whole
//! critical section — that is what makes both multi-shard counter updates
//! and the health aggregate atomic with respect to each other.
//!
//! ## Why the warm path is safe without a lock
//!
//! Readers cannot take a lock, yet the writer must eventually free retired
//! snapshots. [`Published`] uses a *pin-count quiescence* scheme (a
//! hazard-era in miniature, built only on `std` atomics):
//!
//! * a reader **pins** a slot of the shared [`PinDomain`]
//!   (`fetch_add(1, SeqCst)`), loads the cell's pointer (`SeqCst`), clones
//!   the `Arc` via [`Arc::increment_strong_count`], and unpins;
//! * the writer (always under the core lock, so writes are serialized)
//!   swaps in the new pointer, pushes the old one onto a retired list, and
//!   drops retired references only after a `SeqCst` scan observes **every**
//!   pin slot at zero.
//!
//! Soundness in the `SeqCst` total order: if the writer's scan read a
//! reader's pin slot as `0`, then either the reader unpinned before the scan
//! — in which case its `Arc` clone already completed and the strong count
//! protects the allocation — or the reader pinned after the scan, in which
//! case its subsequent pointer load is ordered after the writer's swap and
//! returns the *new* pointer, never the retired one. Either way a retired
//! pointer is dropped only when no reader can still dereference it. A
//! pinned reader merely delays reclamation (the retired list grows until
//! the next quiescent publication), never correctness.

use std::cell::Cell;
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

use crate::engine::ImputeResponse;

/// Number of pin slots readers hash themselves over. More slots mean less
/// false sharing between concurrent readers; the writer's quiescence scan is
/// O(slots) per publication, which is noise next to rebuilding a snapshot.
const PIN_SLOTS: usize = 64;

thread_local! {
    /// The pin slot this thread hashes to (assigned round-robin on first use).
    static PIN_SLOT: Cell<Option<usize>> = const { Cell::new(None) };
}

/// Round-robin source for [`PIN_SLOT`] assignments.
static NEXT_PIN_SLOT: AtomicUsize = AtomicUsize::new(0);

fn pin_slot_for_thread() -> usize {
    PIN_SLOT.with(|slot| match slot.get() {
        Some(s) => s,
        None => {
            let s = NEXT_PIN_SLOT.fetch_add(1, Ordering::Relaxed) % PIN_SLOTS;
            slot.set(Some(s));
            s
        }
    })
}

/// The shared reader-pin table all of an engine's [`Published`] cells
/// reclaim against. One domain per engine: a reader pins once and may then
/// load from any number of cells under the same guard.
pub(crate) struct PinDomain {
    pins: Vec<AtomicUsize>,
}

impl PinDomain {
    fn new() -> Self {
        Self { pins: (0..PIN_SLOTS).map(|_| AtomicUsize::new(0)).collect() }
    }

    /// Pins the calling thread: until the returned guard drops, no snapshot
    /// loaded from a cell of this domain can be reclaimed out from under it.
    pub(crate) fn pin(&self) -> PinGuard<'_> {
        let slot = pin_slot_for_thread();
        self.pins[slot].fetch_add(1, Ordering::SeqCst);
        PinGuard { domain: self, slot }
    }

    /// Whether no reader is currently pinned (a `SeqCst` scan; see the
    /// module docs for why observing all-zero licenses reclamation).
    fn quiescent(&self) -> bool {
        self.pins.iter().all(|p| p.load(Ordering::SeqCst) == 0)
    }
}

/// An active reader pin (see [`PinDomain::pin`]). Dropping it unpins.
pub(crate) struct PinGuard<'a> {
    domain: &'a PinDomain,
    slot: usize,
}

impl Drop for PinGuard<'_> {
    fn drop(&mut self) {
        self.domain.pins[self.slot].fetch_sub(1, Ordering::SeqCst);
    }
}

/// A lock-free published `Arc<T>` slot: readers clone the current value with
/// two atomic ops and no lock; the (serialized) writer swaps in new values
/// and reclaims old ones once the [`PinDomain`] is quiescent.
pub(crate) struct Published<T> {
    /// The live value, as an owned `Arc::into_raw` pointer.
    ptr: AtomicPtr<T>,
    /// Swapped-out values awaiting a quiescent moment to drop. Only the
    /// writer side touches this; the mutex makes that safe even if a caller
    /// ever publishes without external serialization.
    retired: Mutex<Vec<*mut T>>,
}

// SAFETY: `Published` owns its pointers as `Arc`s; the raw forms are only an
// implementation detail of deferred reclamation, so the usual `Arc<T>`
// bounds are the right ones.
unsafe impl<T: Send + Sync> Send for Published<T> {}
// SAFETY: shared access is the lock-free `load` (which only clones `Arc`s)
// plus mutex-serialized writer paths; the same `Arc<T>` bounds as `Send`
// make that sound.
unsafe impl<T: Send + Sync> Sync for Published<T> {}

impl<T> Published<T> {
    pub(crate) fn new(initial: Arc<T>) -> Self {
        Self {
            ptr: AtomicPtr::new(Arc::into_raw(initial) as *mut T),
            retired: Mutex::new(Vec::new()),
        }
    }

    /// Clones the currently published value. Lock-free; the guard proves the
    /// caller pinned the domain this cell reclaims against *before* loading.
    pub(crate) fn load(&self, _pin: &PinGuard<'_>) -> Arc<T> {
        let p = self.ptr.load(Ordering::SeqCst);
        // SAFETY: `p` came from `Arc::into_raw` and the published reference
        // it represents cannot be dropped while the caller is pinned (see
        // the module docs), so its strong count is ≥ 1 throughout this call.
        unsafe {
            Arc::increment_strong_count(p);
            Arc::from_raw(p)
        }
    }

    /// Publishes `new`, retiring the previous value until no pinned reader
    /// can still hold a raw reference to it.
    pub(crate) fn store(&self, new: Arc<T>, domain: &PinDomain) {
        let old = self.ptr.swap(Arc::into_raw(new) as *mut T, Ordering::SeqCst);
        let mut retired = self.retired.lock().unwrap_or_else(PoisonError::into_inner);
        retired.push(old);
        if domain.quiescent() {
            for p in retired.drain(..) {
                // SAFETY: each retired pointer is the published reference we
                // swapped out; the quiescence scan proves no reader is still
                // between its pin and its strong-count increment, so
                // dropping our reference here can never free an allocation
                // a reader is about to touch.
                unsafe { drop(Arc::from_raw(p)) };
            }
        }
    }
}

impl<T> Drop for Published<T> {
    fn drop(&mut self) {
        // SAFETY: exclusive access; both the live pointer and every retired
        // pointer represent exactly one owned reference each.
        unsafe { drop(Arc::from_raw(self.ptr.load(Ordering::SeqCst))) };
        let retired = self.retired.get_mut().unwrap_or_else(PoisonError::into_inner);
        for p in retired.drain(..) {
            // SAFETY: `&mut self` proves no reader is pinned, so every
            // retired pointer still carries the one owned reference we
            // swapped out and can be released unconditionally.
            unsafe { drop(Arc::from_raw(p)) };
        }
    }
}

/// An immutable warm snapshot of one series, published by every mutation
/// that touches the series and read lock-free by the warm query path. All
/// coordinates mirror the engine's: `base`/`live` are logical, `values` is
/// the retained physical span (`values[t]` is logical time `base + t`), and
/// the per-window bit vectors are indexed by storage slot.
pub(crate) struct SeriesSnap {
    /// Oldest retained logical time (the ring origin; window-aligned).
    pub base: usize,
    /// Live logical series length.
    pub live: usize,
    /// Window length of the grid the bits are indexed on.
    pub w: usize,
    /// Imputed values over the retained span (`live - base` entries).
    pub values: Vec<f64>,
    /// Per-slot freshness (mirrors `EngineState::fresh[s]`).
    pub fresh: Vec<bool>,
    /// Per-slot degradation (mirrors `EngineState::degraded[s]`).
    pub degraded: Vec<bool>,
    /// Per-slot "window contains missing entries" — what distinguishes a
    /// cache *hit* (imputations served warm) from a pass-through of fully
    /// observed data.
    pub missing: Vec<bool>,
}

impl SeriesSnap {
    /// The placeholder every cell starts with: nothing retained, nothing
    /// fresh, so every real request falls through to the locked path until
    /// the first publication.
    fn empty() -> Self {
        Self {
            base: 0,
            live: 0,
            w: 1,
            values: Vec::new(),
            fresh: Vec::new(),
            degraded: Vec::new(),
            missing: Vec::new(),
        }
    }

    /// Serves `[start, end)` from this snapshot if the range is valid and
    /// every overlapped window is fresh. Returns the response plus the
    /// number of warm window hits (fresh windows with missing entries).
    /// `None` sends the request to the locked path — both for stale windows
    /// and for invalid ranges, so the typed errors are produced by exactly
    /// one code path and stay identical in both modes.
    pub(crate) fn answer(&self, start: usize, end: usize) -> Option<(ImputeResponse, usize)> {
        if start > end || end > self.live || start < self.base {
            return None;
        }
        let mut hits = 0usize;
        let mut degraded = false;
        if start < end {
            // Mirrors `WindowGrid::windows_overlapping` on a grid whose
            // origin is `base` (window-aligned, so `base / w` is exact).
            let first = self.base / self.w;
            for j in start / self.w..end.div_ceil(self.w) {
                let slot = j - first;
                if !self.fresh[slot] {
                    return None;
                }
                if self.missing[slot] {
                    hits += 1;
                }
                degraded |= self.degraded[slot];
            }
        }
        let values = self.values[start - self.base..end - self.base].to_vec();
        Some((ImputeResponse { values, degraded }, hits))
    }
}

/// One shard's slice of the health counters. Everything in here is guarded
/// by the shard's mutex; a counter for series `s` lives only in shard
/// `shard_of(s)`, so single-series mutations lock exactly one shard.
#[derive(Default)]
pub(crate) struct ShardHealth {
    /// Quarantined values per series (full-length vector; only the series
    /// this shard owns are ever non-zero).
    pub quarantined_by_series: Vec<u64>,
    /// Total quarantined values across the shard's series. Bumped together
    /// with the per-series entry under one lock acquisition, so the sum
    /// invariant `Σ per-series == total` holds in every health report.
    pub quarantined: u64,
    /// Mutations rejected for carrying NaN/±inf, by target series' shard.
    pub nonfinite_input_rejections: u64,
    /// Output-guard degradation events for the shard's series.
    pub degraded_events: u64,
    /// Current number of the shard's windows serving the mean baseline
    /// (a gauge, maintained transitionally at every degrade/heal/evict).
    pub degraded_windows: u64,
}

/// The engine's shard table: hash-sharded health counters plus the
/// per-series publication cells of the warm read path.
pub(crate) struct ShardSet {
    n_shards: usize,
    shards: Vec<Mutex<ShardHealth>>,
    cells: Vec<Published<SeriesSnap>>,
    pins: PinDomain,
    /// Engine-global poison-recovery count (not per-series work, so it gets
    /// its own terminal lock level rather than a shard).
    poison_recoveries: Mutex<u64>,
}

impl ShardSet {
    pub(crate) fn new(n_series: usize, n_shards: usize) -> Self {
        let n_shards = n_shards.max(1);
        Self {
            n_shards,
            shards: (0..n_shards)
                .map(|_| {
                    Mutex::new(ShardHealth {
                        quarantined_by_series: vec![0; n_series],
                        ..ShardHealth::default()
                    })
                })
                .collect(),
            cells: (0..n_series).map(|_| Published::new(Arc::new(SeriesSnap::empty()))).collect(),
            pins: PinDomain::new(),
            poison_recoveries: Mutex::new(0),
        }
    }

    pub(crate) fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// The shard owning series `s` (Fibonacci hash — stable across runs, and
    /// spreads consecutive ids instead of striping them).
    pub(crate) fn shard_of(&self, s: usize) -> usize {
        (((s as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)) >> 32) as usize % self.n_shards
    }

    fn lock_shard(&self, idx: usize) -> MutexGuard<'_, ShardHealth> {
        // Shard critical sections are pure counter arithmetic; a poisoned
        // lock still guards valid counts, so recover by continuing.
        self.shards[idx].lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Locks the single shard owning series `s`.
    pub(crate) fn lock_for_series(&self, s: usize) -> MutexGuard<'_, ShardHealth> {
        self.lock_shard(self.shard_of(s))
    }

    /// Locks the given shards **ascending** and returns all guards together
    /// — the multi-shard ordering protocol (see the module docs). Holding
    /// every involved guard for the whole critical section is what makes a
    /// multi-shard counter update atomic relative to [`ShardSet::lock_all`].
    pub(crate) fn lock_many(
        &self,
        idxs: &BTreeSet<usize>,
    ) -> Vec<(usize, MutexGuard<'_, ShardHealth>)> {
        idxs.iter().map(|&i| (i, self.lock_shard(i))).collect()
    }

    /// Locks every shard ascending — the health aggregate's point-in-time
    /// snapshot.
    pub(crate) fn lock_all(&self) -> Vec<MutexGuard<'_, ShardHealth>> {
        (0..self.n_shards).map(|i| self.lock_shard(i)).collect()
    }

    /// Bumps the global poison-recovery count.
    pub(crate) fn bump_poison(&self) {
        *self.poison_recoveries.lock().unwrap_or_else(PoisonError::into_inner) += 1;
    }

    /// Current global poison-recovery count.
    pub(crate) fn poison_recoveries(&self) -> u64 {
        *self.poison_recoveries.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Lock-free load of series `s`'s current warm snapshot.
    pub(crate) fn snapshot(&self, s: usize) -> Arc<SeriesSnap> {
        let pin = self.pins.pin();
        self.cells[s].load(&pin)
    }

    /// Publishes a new warm snapshot for series `s`. Callers serialize this
    /// under the engine's core lock.
    pub(crate) fn publish(&self, s: usize, snap: SeriesSnap) {
        self.cells[s].store(Arc::new(snap), &self.pins);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn shard_of_is_stable_and_in_range() {
        let set = ShardSet::new(16, 4);
        for s in 0..16 {
            let shard = set.shard_of(s);
            assert!(shard < 4);
            assert_eq!(shard, set.shard_of(s), "shard map must be deterministic");
        }
        // Degenerate single-shard map sends everything to shard 0.
        let one = ShardSet::new(16, 1);
        assert!((0..16).all(|s| one.shard_of(s) == 0));
    }

    /// A tiny deterministic LCG for seeded yield schedules.
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            self.0 >> 33
        }
    }

    /// Loom-lite schedule-permutation smoke over the publish/load handoff:
    /// seeded yield schedules perturb the interleaving of one writer and two
    /// readers across many runs. Readers must only ever observe fully-formed
    /// snapshots (all elements equal to the generation stamp) and a
    /// per-thread monotone generation sequence (publications are totally
    /// ordered by the `SeqCst` swap).
    #[test]
    fn published_cell_survives_permuted_schedules() {
        let permutations: u64 =
            std::env::var("MVI_SCHED_PERMUTATIONS").ok().and_then(|v| v.parse().ok()).unwrap_or(32);
        const GENERATIONS: u64 = 24;
        for seed in 0..permutations {
            let domain = PinDomain::new();
            let cell = Published::new(Arc::new(vec![0u64; 8]));
            std::thread::scope(|scope| {
                let (domain, cell) = (&domain, &cell);
                scope.spawn(move || {
                    let mut rng = Lcg(seed.wrapping_mul(2) + 1);
                    for generation in 1..=GENERATIONS {
                        cell.store(Arc::new(vec![generation; 8]), domain);
                        for _ in 0..rng.next() % 3 {
                            std::thread::yield_now();
                        }
                    }
                });
                for reader in 0..2u64 {
                    scope.spawn(move || {
                        let mut rng = Lcg(seed.wrapping_mul(3) + 7 + reader);
                        let mut last = 0u64;
                        for _ in 0..64 {
                            let snap = {
                                let pin = domain.pin();
                                cell.load(&pin)
                            };
                            let generation = snap[0];
                            assert!(
                                snap.iter().all(|&v| v == generation),
                                "torn snapshot observed: {snap:?}"
                            );
                            assert!(
                                generation >= last,
                                "generation went backwards: {generation} after {last}"
                            );
                            last = generation;
                            for _ in 0..rng.next() % 2 {
                                std::thread::yield_now();
                            }
                        }
                    });
                }
            });
        }
    }

    /// Every published snapshot is dropped exactly once: a drop-counting
    /// canary flows through many publications under reader load, and after
    /// the cell itself drops, the number of drops equals the number of
    /// snapshots ever created (no leak; a double drop would abort or corrupt
    /// the count).
    #[test]
    fn published_cell_reclaims_every_snapshot() {
        static DROPS: AtomicU64 = AtomicU64::new(0);
        struct Canary(#[allow(dead_code)] u64);
        impl Drop for Canary {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }

        const PUBLICATIONS: u64 = 200;
        DROPS.store(0, Ordering::SeqCst);
        {
            let domain = PinDomain::new();
            let cell = Published::new(Arc::new(Canary(0)));
            std::thread::scope(|scope| {
                let (domain, cell) = (&domain, &cell);
                scope.spawn(move || {
                    for generation in 1..=PUBLICATIONS {
                        cell.store(Arc::new(Canary(generation)), domain);
                    }
                });
                scope.spawn(move || {
                    for _ in 0..PUBLICATIONS {
                        let pin = domain.pin();
                        let snap = cell.load(&pin);
                        drop(pin);
                        drop(snap);
                    }
                });
            });
            // `cell` drops here, releasing the live snapshot and any retired
            // stragglers a pinned reader delayed.
        }
        assert_eq!(
            DROPS.load(Ordering::SeqCst),
            PUBLICATIONS + 1,
            "every snapshot (initial + each publication) must drop exactly once"
        );
    }

    #[test]
    fn snap_answer_mirrors_locked_path_semantics() {
        let snap = SeriesSnap {
            base: 10,
            live: 25,
            w: 5,
            values: (0..15).map(|t| t as f64).collect(),
            fresh: vec![true, false, true],
            degraded: vec![false, false, true],
            missing: vec![true, false, true],
        };
        // Fully fresh window with missing entries: answered, one hit.
        let (resp, hits) = snap.answer(10, 15).unwrap();
        assert_eq!(resp.values, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
        assert_eq!(hits, 1);
        assert!(!resp.degraded);
        // Touching the stale middle window falls through to the locked path.
        assert!(snap.answer(10, 20).is_none());
        // Degraded windows answer warm but carry the flag.
        let (resp, hits) = snap.answer(20, 25).unwrap();
        assert!(resp.degraded);
        assert_eq!(hits, 1);
        // Invalid / evicted ranges defer to the locked path for typed errors.
        assert!(snap.answer(9, 15).is_none(), "evicted start");
        assert!(snap.answer(10, 26).is_none(), "past live end");
        assert!(snap.answer(15, 12).is_none(), "inverted");
        // Empty range at a valid position is served warm (no windows).
        let (resp, hits) = snap.answer(25, 25).unwrap();
        assert!(resp.values.is_empty());
        assert_eq!(hits, 0);
    }
}
