//! Model persistence for serving: everything a serving process needs to
//! rehydrate a trained DeepMVI model without the training pipeline.
//!
//! [`deepmvi::DeepMviModel::export_params`] captures only the weights; a
//! server additionally needs the configuration the weights were trained under
//! and the dataset geometry they are sized for. [`ServeSnapshot`] bundles all
//! of that (plus the trained imputation std-dev) into one JSON artifact, and
//! validates geometry on restore so a snapshot cannot silently be loaded
//! against the wrong tenant's data.
//!
//! ## Wire format
//!
//! The current format is **version 2**: a `version` field, both the *trained*
//! series length and the *live* length the serving state had reached when the
//! snapshot was taken (a long-running deployment grows past training — both
//! are geometry-checked on restore), the resolved window width `w` (so the
//! model rebuilds identically even though the live data's missing-block
//! statistics have drifted since training), and the weight tensors packed as
//! **base64 little-endian f64** instead of JSON float arrays — bit-exact and
//! several times smaller than the decimal dump. Version-1 snapshots (no
//! `version` field, plain float arrays, single length) still load.
//!
//! Restore additionally rejects snapshots carrying NaN/±inf weights
//! ([`ServeError::NonFiniteWeights`]): JSON renders non-finite floats as
//! `null`, which reads back as NaN, and a model restored that way would
//! silently answer every query with NaN.

use crate::engine::ServeError;
use deepmvi::{DeepMviConfig, DeepMviModel, FrozenModel};
use mvi_autograd::params::StoreSnapshot;
use mvi_data::dataset::{DimSpec, ObservedDataset};
use mvi_tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Wire-format version written by [`ServeSnapshot::to_json`].
pub const SNAPSHOT_VERSION: u32 = 2;

/// A complete, self-describing dump of a trained model for serving.
#[derive(Clone, Debug)]
pub struct ServeSnapshot {
    /// Configuration the model was trained under (window rule, module
    /// switches, sizes — everything needed to rebuild identical parameters).
    pub config: DeepMviConfig,
    /// Non-time dimensions of the training dataset.
    pub dims: Vec<DimSpec>,
    /// Series length the model was *trained* for.
    pub t_len: usize,
    /// Live series length of the serving state the snapshot captured — equal
    /// to `t_len` right after training, larger once streaming appends have
    /// grown the series.
    pub live_t_len: usize,
    /// Resolved window width `w` the model was built with, pinned so restore
    /// does not re-derive it from post-growth missing statistics (`0` in
    /// snapshots written before version 2: restore falls back to the config's
    /// window rule, which is safe there because v1 states never grew).
    pub window: usize,
    /// Trained shared imputation std-dev (§4), if training captured one.
    pub shared_std: Option<f64>,
    /// The weights.
    pub params: StoreSnapshot,
}

/// Version-2 wire layout (weights packed, both lengths explicit).
#[derive(Serialize, Deserialize)]
struct WireSnapshotV2 {
    version: u32,
    config: DeepMviConfig,
    dims: Vec<DimSpec>,
    t_len: usize,
    live_t_len: usize,
    window: usize,
    shared_std: Option<f64>,
    params: Vec<WireParam>,
}

/// One packed weight tensor: base64 of the little-endian f64 buffer.
#[derive(Serialize, Deserialize)]
struct WireParam {
    name: String,
    shape: Vec<usize>,
    data: String,
}

/// Version-1 wire layout (what [`ServeSnapshot`] itself used to serialize as:
/// one length, weights as JSON float arrays, no version field).
#[derive(Serialize, Deserialize)]
struct WireSnapshotV1 {
    config: DeepMviConfig,
    dims: Vec<DimSpec>,
    t_len: usize,
    shared_std: Option<f64>,
    params: StoreSnapshot,
}

impl ServeSnapshot {
    /// Captures a trained model together with the geometry of the serving
    /// state it serves. `obs` may be longer than the trained length (a grown
    /// serving state); both lengths are persisted and checked on restore.
    ///
    /// # Panics
    /// Panics if `obs` is shorter than the model's trained length.
    pub fn capture(model: &DeepMviModel, obs: &ObservedDataset) -> Self {
        assert!(
            obs.t_len() >= model.t_len(),
            "capture: dataset length {} is shorter than the trained length {}",
            obs.t_len(),
            model.t_len()
        );
        Self {
            config: model.config().clone(),
            dims: obs.dims.clone(),
            t_len: model.t_len(),
            live_t_len: obs.t_len(),
            window: model.window(),
            shared_std: model.shared_std(),
            params: model.export_params(),
        }
    }

    /// Rehydrates a frozen model against `obs`, validating that the dataset
    /// geometry matches what the snapshot describes: same dimensions, and a
    /// length equal to the captured *live* length. The model itself is rebuilt
    /// at the *trained* length (with the pinned window width), so a snapshot
    /// of a grown deployment restores with the exact rolling-horizon behaviour
    /// it was serving.
    ///
    /// # Errors
    /// [`ServeError::Geometry`] on a dimension/length mismatch or a weight
    /// snapshot that does not fit the rebuilt parameter layout;
    /// [`ServeError::NonFiniteWeights`] when any weight is NaN/±inf.
    pub fn restore(&self, obs: &ObservedDataset) -> Result<FrozenModel, ServeError> {
        if obs.dims != self.dims {
            return Err(ServeError::Geometry(format!(
                "dataset dims {:?} do not match snapshot dims {:?}",
                obs.dims.iter().map(|d| (d.name.as_str(), d.len())).collect::<Vec<_>>(),
                self.dims.iter().map(|d| (d.name.as_str(), d.len())).collect::<Vec<_>>(),
            )));
        }
        if self.live_t_len < self.t_len {
            return Err(ServeError::Snapshot(format!(
                "snapshot live length {} is shorter than its trained length {} — a serving \
                 state never shrinks, so the snapshot is corrupt",
                self.live_t_len, self.t_len
            )));
        }
        if obs.t_len() != self.live_t_len {
            return Err(ServeError::Geometry(format!(
                "dataset t_len {} does not match snapshot live length {} (trained length {})",
                obs.t_len(),
                self.live_t_len,
                self.t_len
            )));
        }
        for (name, tensor) in &self.params.params {
            if !tensor.all_finite() {
                return Err(ServeError::NonFiniteWeights { param: name.clone() });
            }
        }
        // Rebuild at trained geometry: the truncated prefix view when the
        // state has grown, with the window width pinned so post-growth block
        // statistics cannot flip the §4.3 window rule and break the layout.
        let trained_view;
        let geometry = if obs.t_len() == self.t_len {
            obs
        } else {
            trained_view = obs.truncated(self.t_len);
            &trained_view
        };
        let config = if self.window > 0 {
            DeepMviConfig { window: Some(self.window), ..self.config.clone() }
        } else {
            self.config.clone()
        };
        FrozenModel::from_snapshot(&config, geometry, &self.params, self.shared_std)
            .map_err(ServeError::Geometry)
    }

    /// Serializes to version-2 JSON (weights base64-packed; see the module
    /// docs for the layout).
    pub fn to_json(&self) -> String {
        let params = self
            .params
            .params
            .iter()
            .map(|(name, tensor)| WireParam {
                name: name.clone(),
                shape: tensor.shape().to_vec(),
                data: base64_encode(&pack_f64_le(tensor.data())),
            })
            .collect();
        let wire = WireSnapshotV2 {
            version: SNAPSHOT_VERSION,
            config: self.config.clone(),
            dims: self.dims.clone(),
            t_len: self.t_len,
            live_t_len: self.live_t_len,
            window: self.window,
            shared_std: self.shared_std,
            params,
        };
        serde_json::to_string(&wire).expect("snapshot serialization cannot fail")
    }

    /// Parses a snapshot serialized with [`ServeSnapshot::to_json`] — the
    /// current version-2 layout or the legacy version-1 float-array layout.
    ///
    /// # Errors
    /// [`ServeError::Snapshot`] when the JSON parses as neither version, the
    /// version is unknown, or a packed weight buffer does not decode to its
    /// declared shape.
    pub fn from_json(json: &str) -> Result<Self, ServeError> {
        let v2_err = match serde_json::from_str::<WireSnapshotV2>(json) {
            Ok(wire) => {
                if wire.version != SNAPSHOT_VERSION {
                    return Err(ServeError::Snapshot(format!(
                        "unsupported snapshot version {} (this build reads 1..={SNAPSHOT_VERSION})",
                        wire.version
                    )));
                }
                let mut params = Vec::with_capacity(wire.params.len());
                for p in wire.params {
                    let bytes = base64_decode(&p.data).map_err(|e| {
                        ServeError::Snapshot(format!("parameter `{}`: {e}", p.name))
                    })?;
                    let expected: usize = p.shape.iter().product();
                    if bytes.len() != 8 * expected {
                        return Err(ServeError::Snapshot(format!(
                            "parameter `{}`: {} bytes do not fill shape {:?}",
                            p.name,
                            bytes.len(),
                            p.shape
                        )));
                    }
                    params.push((p.name, Tensor::from_vec(p.shape, unpack_f64_le(&bytes))));
                }
                return Ok(Self {
                    config: wire.config,
                    dims: wire.dims,
                    t_len: wire.t_len,
                    live_t_len: wire.live_t_len,
                    window: wire.window,
                    shared_std: wire.shared_std,
                    params: StoreSnapshot { params },
                });
            }
            Err(e) => e,
        };
        match serde_json::from_str::<WireSnapshotV1>(json) {
            Ok(wire) => Ok(Self {
                config: wire.config,
                dims: wire.dims,
                t_len: wire.t_len,
                live_t_len: wire.t_len,
                window: 0,
                shared_std: wire.shared_std,
                params: wire.params,
            }),
            Err(v1_err) => Err(ServeError::Snapshot(format!(
                "not a v{SNAPSHOT_VERSION} snapshot ({v2_err:?}) and not a v1 snapshot \
                 ({v1_err:?})"
            ))),
        }
    }
}

// ---------------------------------------------------------------------------
// Weight packing: little-endian f64 <-> base64 (RFC 4648 standard alphabet,
// padded). Hand-rolled because the offline workspace vendors no base64 crate;
// round-trips are bit-exact, so NaN payloads survive into the finite check.
// ---------------------------------------------------------------------------

fn pack_f64_le(values: &[f64]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(values.len() * 8);
    for v in values {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    bytes
}

fn unpack_f64_le(bytes: &[u8]) -> Vec<f64> {
    bytes.chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes"))).collect()
}

const B64_ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

fn base64_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len().div_ceil(3) * 4);
    for chunk in bytes.chunks(3) {
        let b1 = chunk[0] as u32;
        let b2 = chunk.get(1).copied().unwrap_or(0) as u32;
        let b3 = chunk.get(2).copied().unwrap_or(0) as u32;
        let n = (b1 << 16) | (b2 << 8) | b3;
        out.push(B64_ALPHABET[(n >> 18) as usize & 63] as char);
        out.push(B64_ALPHABET[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 { B64_ALPHABET[(n >> 6) as usize & 63] as char } else { '=' });
        out.push(if chunk.len() > 2 { B64_ALPHABET[n as usize & 63] as char } else { '=' });
    }
    out
}

fn base64_decode(s: &str) -> Result<Vec<u8>, String> {
    fn sextet(c: u8) -> Result<u32, String> {
        match c {
            b'A'..=b'Z' => Ok((c - b'A') as u32),
            b'a'..=b'z' => Ok((c - b'a' + 26) as u32),
            b'0'..=b'9' => Ok((c - b'0' + 52) as u32),
            b'+' => Ok(62),
            b'/' => Ok(63),
            _ => Err(format!("invalid base64 byte `{}`", c as char)),
        }
    }
    let bytes = s.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return Err(format!("base64 length {} is not a multiple of 4", bytes.len()));
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    let n_groups = bytes.len() / 4;
    for (g, chunk) in bytes.chunks_exact(4).enumerate() {
        let pad = chunk.iter().rev().take_while(|&&c| c == b'=').count();
        if pad > 2 || (pad > 0 && g + 1 != n_groups) {
            return Err("misplaced base64 padding".into());
        }
        let mut n = 0u32;
        for (i, &c) in chunk.iter().enumerate() {
            let v = if c == b'=' {
                if i < 4 - pad {
                    return Err("misplaced base64 padding".into());
                }
                0
            } else {
                sextet(c)?
            };
            n = (n << 6) | v;
        }
        out.push((n >> 16) as u8);
        if pad < 2 {
            out.push((n >> 8) as u8);
        }
        if pad < 1 {
            out.push(n as u8);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvi_data::generators::{generate_with_shape, DatasetName};
    use mvi_data::scenarios::Scenario;

    fn trained() -> (ObservedDataset, DeepMviModel) {
        let ds = generate_with_shape(DatasetName::Gas, &[3], 120, 4);
        let inst = Scenario::mcar(1.0).apply(&ds, 1);
        let obs = inst.observed();
        let cfg = DeepMviConfig { max_steps: 5, ..DeepMviConfig::tiny() };
        let mut model = DeepMviModel::new(&cfg, &obs);
        model.fit(&obs);
        (obs, model)
    }

    #[test]
    fn base64_roundtrips_arbitrary_buffers() {
        for len in 0..12 {
            let bytes: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            let enc = base64_encode(&bytes);
            assert_eq!(enc.len() % 4, 0);
            assert_eq!(base64_decode(&enc).unwrap(), bytes, "len {len}");
        }
        // Known vector (RFC 4648): "foobar".
        assert_eq!(base64_encode(b"foobar"), "Zm9vYmFy");
        assert_eq!(base64_encode(b"foob"), "Zm9vYg==");
        assert!(base64_decode("Zm9=YQ==").is_err(), "misplaced padding must fail");
        assert!(base64_decode("abc").is_err(), "truncated group must fail");
        assert!(base64_decode("ab!d").is_err(), "bad alphabet must fail");
    }

    #[test]
    fn packed_floats_roundtrip_bit_exactly() {
        let vals = [0.0, -0.0, 1.5, f64::NAN, f64::INFINITY, f64::MIN_POSITIVE, -1e300];
        let back = unpack_f64_le(&pack_f64_le(&vals));
        for (a, b) in vals.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn snapshot_roundtrips_through_json_and_validates_geometry() {
        let (obs, model) = trained();
        let expected = model.impute(&obs);

        let snap = ServeSnapshot::capture(&model, &obs);
        assert_eq!(snap.t_len, snap.live_t_len, "fresh capture has not grown");
        assert_eq!(snap.window, model.window());
        let back = ServeSnapshot::from_json(&snap.to_json()).unwrap();
        let frozen = back.restore(&obs).unwrap();
        assert_eq!(frozen.impute(&obs), expected);

        // Wrong geometry is rejected.
        let other = generate_with_shape(DatasetName::Gas, &[4], 120, 4);
        let other_obs = Scenario::mcar(1.0).apply(&other, 1).observed();
        assert!(matches!(back.restore(&other_obs), Err(ServeError::Geometry(_))));

        let shorter = generate_with_shape(DatasetName::Gas, &[3], 80, 4);
        let shorter_obs = Scenario::mcar(1.0).apply(&shorter, 1).observed();
        assert!(matches!(back.restore(&shorter_obs), Err(ServeError::Geometry(_))));
    }

    #[test]
    fn v2_packing_shrinks_the_artifact() {
        let (obs, model) = trained();
        let snap = ServeSnapshot::capture(&model, &obs);
        let v2 = snap.to_json();
        let v1 = serde_json::to_string(&WireSnapshotV1 {
            config: snap.config.clone(),
            dims: snap.dims.clone(),
            t_len: snap.t_len,
            shared_std: snap.shared_std,
            params: snap.params.clone(),
        })
        .unwrap();
        let raw = 8 * snap.params.params.iter().map(|(_, t)| t.len()).sum::<usize>();
        eprintln!(
            "snapshot sizes: raw weights {raw} B, v1 float-array {} B ({:.2}x raw), v2 packed {} \
             B ({:.2}x raw, {:.2}x smaller than v1)",
            v1.len(),
            v1.len() as f64 / raw as f64,
            v2.len(),
            v2.len() as f64 / raw as f64,
            v1.len() as f64 / v2.len() as f64
        );
        assert!(
            v2.len() < v1.len(),
            "packed snapshot ({}) not smaller than float-array dump ({})",
            v2.len(),
            v1.len()
        );
        // Base64 is 4/3 of raw; everything else (names, shapes, config) is
        // bounded overhead. Guard the packing stays near that bound.
        assert!(
            (v2.len() as f64) < 1.5 * raw as f64 + 4096.0,
            "packed snapshot {} bytes for {} raw weight bytes",
            v2.len(),
            raw
        );
    }

    #[test]
    fn legacy_v1_json_still_loads() {
        let (obs, model) = trained();
        let expected = model.impute(&obs);
        let snap = ServeSnapshot::capture(&model, &obs);
        // Exactly what the pre-versioning format serialized as.
        let v1_json = serde_json::to_string(&WireSnapshotV1 {
            config: snap.config.clone(),
            dims: snap.dims.clone(),
            t_len: snap.t_len,
            shared_std: snap.shared_std,
            params: snap.params.clone(),
        })
        .unwrap();
        let back = ServeSnapshot::from_json(&v1_json).unwrap();
        assert_eq!(back.live_t_len, back.t_len, "v1 states never grew");
        assert_eq!(back.window, 0, "v1 has no pinned window");
        let frozen = back.restore(&obs).unwrap();
        assert_eq!(frozen.impute(&obs), expected);
        assert_eq!(frozen.shared_std(), snap.shared_std);
    }

    #[test]
    fn future_versions_and_garbled_payloads_are_rejected() {
        let (obs, model) = trained();
        let snap = ServeSnapshot::capture(&model, &obs);
        let json = snap.to_json();
        let future = json.replacen("\"version\":2", "\"version\":99", 1);
        assert!(matches!(
            ServeSnapshot::from_json(&future),
            Err(ServeError::Snapshot(msg)) if msg.contains("version 99")
        ));
        // Corrupt one packed buffer: the shape/byte-count check catches it.
        let garbled = json.replacen("\"data\":\"", "\"data\":\"AAAA", 1);
        assert!(matches!(ServeSnapshot::from_json(&garbled), Err(ServeError::Snapshot(_))));
        // An inverted length pair (live < trained) is a typed error on
        // restore, not a panic inside the trained-view truncation.
        let mut inverted = snap.clone();
        inverted.live_t_len = snap.t_len - 20;
        let short_obs = obs.truncated(inverted.live_t_len);
        assert!(matches!(inverted.restore(&short_obs), Err(ServeError::Snapshot(_))));
    }

    #[test]
    fn non_finite_weights_are_rejected_on_restore() {
        let (obs, model) = trained();
        let mut snap = ServeSnapshot::capture(&model, &obs);
        // Poison one weight; v2 base64 packing preserves the NaN bits, so the
        // JSON roundtrip hands the finite check exactly what was written.
        snap.params.params[1].1.data_mut()[0] = f64::NAN;
        let back = ServeSnapshot::from_json(&snap.to_json()).unwrap();
        let poisoned = &back.params.params[1];
        assert!(poisoned.1.data()[0].is_nan(), "NaN lost in the packed roundtrip");
        let err = back.restore(&obs).err().expect("poisoned snapshot must not restore");
        assert_eq!(err, ServeError::NonFiniteWeights { param: poisoned.0.clone() });

        // The v1 path (where JSON turns NaN into null and back into NaN —
        // the original silent-NaN-serving bug) is rejected the same way.
        let v1_json = serde_json::to_string(&WireSnapshotV1 {
            config: snap.config.clone(),
            dims: snap.dims.clone(),
            t_len: snap.t_len,
            shared_std: snap.shared_std,
            params: snap.params.clone(),
        })
        .unwrap();
        let v1_back = ServeSnapshot::from_json(&v1_json).unwrap();
        assert!(matches!(v1_back.restore(&obs), Err(ServeError::NonFiniteWeights { .. })));
        // An infinity is caught too, not just NaN.
        let mut inf = ServeSnapshot::capture(&model, &obs);
        inf.params.params[0].1.data_mut()[2] = f64::INFINITY;
        assert!(matches!(inf.restore(&obs), Err(ServeError::NonFiniteWeights { .. })));
    }

    #[test]
    fn malformed_json_is_a_snapshot_error() {
        assert!(matches!(ServeSnapshot::from_json("{nope"), Err(ServeError::Snapshot(_))));
    }
}
