//! Model persistence for serving: everything a serving process needs to
//! rehydrate a trained DeepMVI model without the training pipeline.
//!
//! [`deepmvi::DeepMviModel::export_params`] captures only the weights; a
//! server additionally needs the configuration the weights were trained under
//! and the dataset geometry they are sized for. [`ServeSnapshot`] bundles all
//! of that (plus the trained imputation std-dev) into one JSON artifact, and
//! validates geometry on restore so a snapshot cannot silently be loaded
//! against the wrong tenant's data.
//!
//! ## Wire format
//!
//! The current format is **version 4**: everything version 3 carried — a
//! `version` field, both the *trained* series length and the *live* length
//! the serving state had reached when the snapshot was taken (a long-running
//! deployment grows past training — both are geometry-checked on restore),
//! the resolved window width `w` (so the model rebuilds identically even
//! though the live data's missing-block statistics have drifted since
//! training), the weight tensors packed as **base64 little-endian f64**,
//! the retention-ring geometry (`retained_start`, the configured
//! `retention` window) and an optional **warm-cache section**: the retained
//! observed values and availability mask, the imputation cache, the
//! per-`(series, window)` freshness bits and the write watermarks, packed
//! the same way as the weights (f64 buffers base64, boolean buffers
//! bit-packed base64) — plus a **CRC-32 checksum per packed section**
//! (computed over the raw bytes before base64). Decode recomputes every
//! checksum and a mismatch fails with the typed [`ServeError::Corrupt`]
//! naming the bad section, so bit rot in a weight buffer is caught at load
//! time instead of surfacing as silently-wrong imputations. A snapshot
//! carrying the cache section restores straight into a serving engine
//! ([`crate::ImputationEngine::from_snapshot`]) that answers every
//! previously-cached query with **zero forward passes** — a warm restart
//! instead of a cold recompute.
//!
//! Version-3 snapshots (no checksums), version-2 snapshots (no retention
//! fields, no cache) and version-1 snapshots (no `version` field, plain
//! float arrays, single length) still load, v2/v1 with the ring origin at
//! `0` and no cache.
//!
//! For whole-file durability on disk — a framed header with a digest over
//! the entire JSON body, temp-file + atomic-rename writes, and
//! restore-with-fallback across snapshot generations — see [`crate::durable`].
//!
//! Restore additionally rejects snapshots carrying NaN/±inf weights
//! ([`ServeError::NonFiniteWeights`]): JSON renders non-finite floats as
//! `null`, which reads back as NaN, and a model restored that way would
//! silently answer every query with NaN. Cache sections are held to the same
//! standard — non-finite cached values refuse to load.

use crate::engine::ServeError;
use deepmvi::{DeepMviConfig, DeepMviModel, FrozenModel};
use mvi_autograd::params::StoreSnapshot;
use mvi_data::dataset::{DimSpec, ObservedDataset};
use mvi_tensor::{Mask, Tensor};
use serde::{Deserialize, Serialize};

/// Wire-format version written by [`ServeSnapshot::to_json`].
pub const SNAPSHOT_VERSION: u32 = 4;

/// A complete, self-describing dump of a trained model for serving.
#[derive(Clone, Debug)]
pub struct ServeSnapshot {
    /// Configuration the model was trained under (window rule, module
    /// switches, sizes — everything needed to rebuild identical parameters).
    pub config: DeepMviConfig,
    /// Non-time dimensions of the training dataset.
    pub dims: Vec<DimSpec>,
    /// Series length the model was *trained* for.
    pub t_len: usize,
    /// Live series length of the serving state the snapshot captured — equal
    /// to `t_len` right after training, larger once streaming appends have
    /// grown the series.
    pub live_t_len: usize,
    /// Resolved window width `w` the model was built with, pinned so restore
    /// does not re-derive it from post-growth missing statistics (`0` in
    /// snapshots written before version 2: restore falls back to the config's
    /// window rule, which is safe there because v1 states never grew).
    pub window: usize,
    /// Oldest retained time position of the captured serving state (the
    /// retention-ring origin; `0` on unbounded engines and in pre-v3
    /// snapshots). The retained span `[retained_start, live_t_len)` is what
    /// physical storage — and the cache section, if present — covers.
    pub retained_start: usize,
    /// The retention window the engine was configured with, if any (`None`
    /// in pre-v3 snapshots and for unbounded engines).
    pub retention: Option<usize>,
    /// Trained shared imputation std-dev (§4), if training captured one.
    pub shared_std: Option<f64>,
    /// The weights.
    pub params: StoreSnapshot,
    /// Optional warm-cache section ([`CacheSnapshot`]): present when the
    /// snapshot was taken from a live engine with
    /// [`crate::ImputationEngine::snapshot`], absent from model-only captures
    /// ([`ServeSnapshot::capture`]) and pre-v3 snapshots.
    pub cache: Option<CacheSnapshot>,
}

/// The serving engine's warm state over the retained span
/// `[retained_start, live_t_len)`: everything
/// [`crate::ImputationEngine::from_snapshot`] needs to resume serving without
/// recomputing a single window. All tensors are in physical (ring-relative)
/// layout — time position `0` is `retained_start`.
#[derive(Clone, Debug)]
pub struct CacheSnapshot {
    /// Dataset name of the serving state.
    pub name: String,
    /// Observed values over the retained span (missing entries zero).
    pub values: Tensor,
    /// Availability mask over the retained span.
    pub available: Mask,
    /// The imputation cache: observed values + latest imputations.
    pub imputed: Tensor,
    /// Per-series window freshness, indexed by storage slot.
    pub fresh: Vec<Vec<bool>>,
    /// Per-series write watermarks (logical time).
    pub watermark: Vec<usize>,
}

/// Version-4 wire layout: v3 plus a CRC-32 per packed section (over the raw
/// bytes before base64), so corruption is a typed load error naming the bad
/// section instead of silently-wrong weights.
#[derive(Serialize, Deserialize)]
struct WireSnapshotV4 {
    version: u32,
    config: DeepMviConfig,
    dims: Vec<DimSpec>,
    t_len: usize,
    live_t_len: usize,
    window: usize,
    retained_start: usize,
    retention: Option<usize>,
    shared_std: Option<f64>,
    params: Vec<WireParamV4>,
    cache: Option<WireCacheV4>,
}

/// One packed weight tensor with its integrity checksum.
#[derive(Serialize, Deserialize)]
struct WireParamV4 {
    name: String,
    shape: Vec<usize>,
    data: String,
    crc32: u32,
}

/// Wire form of [`CacheSnapshot`] with one checksum per packed buffer.
#[derive(Serialize, Deserialize)]
struct WireCacheV4 {
    name: String,
    values: String,
    values_crc32: u32,
    available: String,
    available_crc32: u32,
    imputed: String,
    imputed_crc32: u32,
    fresh: String,
    fresh_crc32: u32,
    watermark: Vec<usize>,
}

/// Version-3 wire layout: v2 plus ring geometry and the optional cache.
#[derive(Serialize, Deserialize)]
struct WireSnapshotV3 {
    version: u32,
    config: DeepMviConfig,
    dims: Vec<DimSpec>,
    t_len: usize,
    live_t_len: usize,
    window: usize,
    retained_start: usize,
    retention: Option<usize>,
    shared_std: Option<f64>,
    params: Vec<WireParam>,
    cache: Option<WireCache>,
}

/// Wire form of [`CacheSnapshot`]: f64 buffers packed like the weights,
/// boolean buffers bit-packed (LSB-first) then base64'd. Shapes are implied
/// by the snapshot geometry (`dims × retained span`, freshness `series ×
/// retained windows`) and validated on decode.
#[derive(Serialize, Deserialize)]
struct WireCache {
    name: String,
    values: String,
    available: String,
    imputed: String,
    fresh: String,
    watermark: Vec<usize>,
}

/// Version-2 wire layout (weights packed, both lengths explicit).
#[derive(Serialize, Deserialize)]
struct WireSnapshotV2 {
    version: u32,
    config: DeepMviConfig,
    dims: Vec<DimSpec>,
    t_len: usize,
    live_t_len: usize,
    window: usize,
    shared_std: Option<f64>,
    params: Vec<WireParam>,
}

/// One packed weight tensor: base64 of the little-endian f64 buffer.
#[derive(Serialize, Deserialize)]
struct WireParam {
    name: String,
    shape: Vec<usize>,
    data: String,
}

/// Version-1 wire layout (what [`ServeSnapshot`] itself used to serialize as:
/// one length, weights as JSON float arrays, no version field).
#[derive(Serialize, Deserialize)]
struct WireSnapshotV1 {
    config: DeepMviConfig,
    dims: Vec<DimSpec>,
    t_len: usize,
    shared_std: Option<f64>,
    params: StoreSnapshot,
}

impl ServeSnapshot {
    /// Captures a trained model together with the geometry of the serving
    /// state it serves. `obs` may be longer than the trained length (a grown
    /// serving state); both lengths are persisted and checked on restore.
    ///
    /// # Panics
    /// Panics if `obs` is shorter than the model's trained length.
    pub fn capture(model: &DeepMviModel, obs: &ObservedDataset) -> Self {
        assert!(
            obs.t_len() >= model.t_len(),
            "capture: dataset length {} is shorter than the trained length {}",
            obs.t_len(),
            model.t_len()
        );
        Self {
            config: model.config().clone(),
            dims: obs.dims.clone(),
            t_len: model.t_len(),
            live_t_len: obs.t_len(),
            window: model.window(),
            retained_start: 0,
            retention: None,
            shared_std: model.shared_std(),
            params: model.export_params(),
            cache: None,
        }
    }

    /// The retained span `live_t_len - retained_start` — the series length a
    /// dataset handed to [`ServeSnapshot::restore`] must have, and the time
    /// extent of the cache section if one is present.
    pub fn retained_len(&self) -> usize {
        self.live_t_len - self.retained_start
    }

    /// Rehydrates a frozen model against `obs`, validating that the dataset
    /// geometry matches what the snapshot describes: same dimensions, and a
    /// length equal to the captured *retained span* (the full live length
    /// unless the serving state ran under a retention ring). The model itself
    /// is rebuilt at the *trained* length (with the pinned window width), so
    /// a snapshot of a grown deployment restores with the exact
    /// rolling-horizon behaviour it was serving.
    ///
    /// # Errors
    /// [`ServeError::Geometry`] on a dimension/length mismatch or a weight
    /// snapshot that does not fit the rebuilt parameter layout;
    /// [`ServeError::NonFiniteWeights`] when any weight is NaN/±inf.
    pub fn restore(&self, obs: &ObservedDataset) -> Result<FrozenModel, ServeError> {
        self.check_lengths()?;
        if obs.dims != self.dims {
            return Err(ServeError::Geometry(format!(
                "dataset dims {:?} do not match snapshot dims {:?}",
                obs.dims.iter().map(|d| (d.name.as_str(), d.len())).collect::<Vec<_>>(),
                self.dims.iter().map(|d| (d.name.as_str(), d.len())).collect::<Vec<_>>(),
            )));
        }
        if obs.t_len() != self.retained_len() {
            return Err(ServeError::Geometry(format!(
                "dataset t_len {} does not match snapshot retained span {} (live length {}, \
                 retained from {}, trained length {})",
                obs.t_len(),
                self.retained_len(),
                self.live_t_len,
                self.retained_start,
                self.t_len
            )));
        }
        self.rebuild_model(obs)
    }

    /// Internal sanity of the persisted lengths (shared by every restore
    /// path).
    fn check_lengths(&self) -> Result<(), ServeError> {
        // An *unbounded* serving state never shrinks below the trained
        // length; a bounded engine may legitimately have been built over a
        // retained window shorter than the trained span, so the check only
        // applies without retention.
        if self.retention.is_none() && self.live_t_len < self.t_len {
            return Err(ServeError::Snapshot(format!(
                "snapshot live length {} is shorter than its trained length {} — an unbounded \
                 serving state never shrinks, so the snapshot is corrupt",
                self.live_t_len, self.t_len
            )));
        }
        if self.retained_start >= self.live_t_len {
            return Err(ServeError::Snapshot(format!(
                "snapshot retained start {} leaves no retained span (live length {})",
                self.retained_start, self.live_t_len
            )));
        }
        if self.window > 0 && !self.retained_start.is_multiple_of(self.window) {
            return Err(ServeError::Snapshot(format!(
                "snapshot retained start {} is not aligned to the window width {}",
                self.retained_start, self.window
            )));
        }
        Ok(())
    }

    /// Rebuilds the frozen model from the weights, taking dataset geometry
    /// (dims, series shape) from `geometry_source`, whose time extent may be
    /// anything — the model is rebuilt at the trained length: the truncated
    /// prefix view when the source is longer (a grown state), an all-missing
    /// extension when shorter (a retention ring smaller than the trained
    /// span; only shapes matter because the window width is pinned).
    fn rebuild_model(&self, geometry_source: &ObservedDataset) -> Result<FrozenModel, ServeError> {
        for (name, tensor) in &self.params.params {
            if !tensor.all_finite() {
                return Err(ServeError::NonFiniteWeights { param: name.clone() });
            }
        }
        // Rebuild at trained geometry, with the window width pinned so
        // post-growth block statistics cannot flip the §4.3 window rule and
        // break the layout.
        let trained_view;
        let geometry = if geometry_source.t_len() == self.t_len {
            geometry_source
        } else if geometry_source.t_len() > self.t_len {
            trained_view = geometry_source.truncated(self.t_len);
            &trained_view
        } else {
            let mut extended = geometry_source.clone();
            extended.extend_time(self.t_len);
            trained_view = extended;
            &trained_view
        };
        let config = if self.window > 0 {
            DeepMviConfig { window: Some(self.window), ..self.config.clone() }
        } else {
            self.config.clone()
        };
        FrozenModel::from_snapshot(&config, geometry, &self.params, self.shared_std)
            .map_err(ServeError::Geometry)
    }

    /// Serializes to version-4 JSON (weights — and the cache section, if
    /// present — packed, each packed section checksummed; see the module docs
    /// for the layout).
    pub fn to_json(&self) -> String {
        let packed = |bytes: Vec<u8>| {
            let crc = crate::durable::crc32(&bytes);
            (base64_encode(&bytes), crc)
        };
        let params = self
            .params
            .params
            .iter()
            .map(|(name, tensor)| {
                let (data, crc32) = packed(pack_f64_le(tensor.data()));
                WireParamV4 { name: name.clone(), shape: tensor.shape().to_vec(), data, crc32 }
            })
            .collect();
        let cache = self.cache.as_ref().map(|c| {
            let (values, values_crc32) = packed(pack_f64_le(c.values.data()));
            let (available, available_crc32) = packed(pack_bits(c.available.data()));
            let (imputed, imputed_crc32) = packed(pack_f64_le(c.imputed.data()));
            let flat: Vec<bool> = c.fresh.iter().flatten().copied().collect();
            let (fresh, fresh_crc32) = packed(pack_bits(&flat));
            WireCacheV4 {
                name: c.name.clone(),
                values,
                values_crc32,
                available,
                available_crc32,
                imputed,
                imputed_crc32,
                fresh,
                fresh_crc32,
                watermark: c.watermark.clone(),
            }
        });
        let wire = WireSnapshotV4 {
            version: SNAPSHOT_VERSION,
            config: self.config.clone(),
            dims: self.dims.clone(),
            t_len: self.t_len,
            live_t_len: self.live_t_len,
            window: self.window,
            retained_start: self.retained_start,
            retention: self.retention,
            shared_std: self.shared_std,
            params,
            cache,
        };
        serde_json::to_string(&wire).expect("snapshot serialization cannot fail")
    }

    /// Parses a snapshot serialized with [`ServeSnapshot::to_json`] — the
    /// current version-4 layout or the legacy version-3 / version-2 /
    /// version-1 layouts.
    ///
    /// # Errors
    /// [`ServeError::Snapshot`] when the JSON parses as no known version, the
    /// version is unknown, or a packed buffer does not decode to its declared
    /// shape; [`ServeError::Corrupt`] when a v4 section fails its checksum
    /// (the error names the section).
    pub fn from_json(json: &str) -> Result<Self, ServeError> {
        let v4_err = match serde_json::from_str::<WireSnapshotV4>(json) {
            Ok(wire) => {
                if wire.version != SNAPSHOT_VERSION {
                    return Err(ServeError::Snapshot(format!(
                        "unsupported snapshot version {} (this build reads 1..={SNAPSHOT_VERSION})",
                        wire.version
                    )));
                }
                return Self::from_wire_v4(wire);
            }
            Err(e) => e,
        };
        // A v3 snapshot is exactly v4 minus the checksum fields, so the v4
        // parse above fails on it with a missing-field error and lands here.
        if let Ok(wire) = serde_json::from_str::<WireSnapshotV3>(json) {
            if wire.version != 3 {
                return Err(ServeError::Snapshot(format!(
                    "unsupported snapshot version {} (this build reads 1..={SNAPSHOT_VERSION})",
                    wire.version
                )));
            }
            return Self::from_wire_v3(wire);
        }
        if let Ok(wire) = serde_json::from_str::<WireSnapshotV2>(json) {
            if wire.version != 2 {
                return Err(ServeError::Snapshot(format!(
                    "unsupported snapshot version {} (this build reads 1..={SNAPSHOT_VERSION})",
                    wire.version
                )));
            }
            return Ok(Self {
                config: wire.config,
                dims: wire.dims,
                t_len: wire.t_len,
                live_t_len: wire.live_t_len,
                window: wire.window,
                retained_start: 0,
                retention: None,
                shared_std: wire.shared_std,
                params: StoreSnapshot { params: unpack_params(wire.params)? },
                cache: None,
            });
        }
        match serde_json::from_str::<WireSnapshotV1>(json) {
            Ok(wire) => Ok(Self {
                config: wire.config,
                dims: wire.dims,
                t_len: wire.t_len,
                live_t_len: wire.t_len,
                window: 0,
                retained_start: 0,
                retention: None,
                shared_std: wire.shared_std,
                params: wire.params,
                cache: None,
            }),
            Err(v1_err) => Err(ServeError::Snapshot(format!(
                "not a v{SNAPSHOT_VERSION} snapshot ({v4_err:?}) and not a v1 snapshot \
                 ({v1_err:?})"
            ))),
        }
    }

    /// Decodes a parsed v4 wire structure: every packed section's checksum is
    /// verified over its raw bytes first (a mismatch is a typed
    /// [`ServeError::Corrupt`] naming the section), then the payload goes
    /// through the same geometry validation as v3.
    fn from_wire_v4(wire: WireSnapshotV4) -> Result<Self, ServeError> {
        let checked = |data: &str, section: &str, recorded: u32| -> Result<(), ServeError> {
            let bytes = base64_decode(data)
                .map_err(|detail| ServeError::Corrupt { section: section.to_string(), detail })?;
            let actual = crate::durable::crc32(&bytes);
            if actual != recorded {
                return Err(ServeError::Corrupt {
                    section: section.to_string(),
                    detail: format!("crc32 {actual:08x} does not match recorded {recorded:08x}"),
                });
            }
            Ok(())
        };
        let mut params = Vec::with_capacity(wire.params.len());
        for p in wire.params {
            checked(&p.data, &format!("params/{}", p.name), p.crc32)?;
            params.push(WireParam { name: p.name, shape: p.shape, data: p.data });
        }
        let cache = match wire.cache {
            None => None,
            Some(c) => {
                checked(&c.values, "cache.values", c.values_crc32)?;
                checked(&c.available, "cache.available", c.available_crc32)?;
                checked(&c.imputed, "cache.imputed", c.imputed_crc32)?;
                checked(&c.fresh, "cache.fresh", c.fresh_crc32)?;
                Some(WireCache {
                    name: c.name,
                    values: c.values,
                    available: c.available,
                    imputed: c.imputed,
                    fresh: c.fresh,
                    watermark: c.watermark,
                })
            }
        };
        Self::from_wire_v3(WireSnapshotV3 {
            version: 3,
            config: wire.config,
            dims: wire.dims,
            t_len: wire.t_len,
            live_t_len: wire.live_t_len,
            window: wire.window,
            retained_start: wire.retained_start,
            retention: wire.retention,
            shared_std: wire.shared_std,
            params,
            cache,
        })
    }

    /// Decodes a parsed v3 wire structure, validating every packed buffer
    /// against the snapshot geometry.
    fn from_wire_v3(wire: WireSnapshotV3) -> Result<Self, ServeError> {
        let params = unpack_params(wire.params)?;
        if wire.retained_start >= wire.live_t_len {
            return Err(ServeError::Snapshot(format!(
                "retained start {} leaves no retained span (live length {})",
                wire.retained_start, wire.live_t_len
            )));
        }
        let span = wire.live_t_len - wire.retained_start;
        let series_shape: Vec<usize> = wire.dims.iter().map(DimSpec::len).collect();
        let n_series: usize = series_shape.iter().product();
        let mut tensor_shape = series_shape;
        tensor_shape.push(span);
        let cache = match wire.cache {
            None => None,
            Some(c) => {
                let cells = n_series * span;
                let values = unpack_f64_field(&c.values, "cache.values", &tensor_shape, cells)?;
                let imputed = unpack_f64_field(&c.imputed, "cache.imputed", &tensor_shape, cells)?;
                let available = Mask::from_vec(
                    tensor_shape.clone(),
                    unpack_bool_field(&c.available, "cache.available", cells)?,
                );
                if wire.window == 0 {
                    return Err(ServeError::Snapshot(
                        "cache section requires a pinned window width".into(),
                    ));
                }
                let n_windows =
                    wire.live_t_len.div_ceil(wire.window) - wire.retained_start / wire.window;
                let flat_fresh = unpack_bool_field(&c.fresh, "cache.fresh", n_series * n_windows)?;
                let fresh: Vec<Vec<bool>> =
                    flat_fresh.chunks(n_windows).map(<[bool]>::to_vec).collect();
                if c.watermark.len() != n_series {
                    return Err(ServeError::Snapshot(format!(
                        "cache.watermark has {} entries for {} series",
                        c.watermark.len(),
                        n_series
                    )));
                }
                for (s, &wm) in c.watermark.iter().enumerate() {
                    if wm < wire.retained_start || wm > wire.live_t_len {
                        return Err(ServeError::Snapshot(format!(
                            "cache.watermark[{s}] = {wm} outside the retained span [{}, {}]",
                            wire.retained_start, wire.live_t_len
                        )));
                    }
                }
                if !values.all_finite() || !imputed.all_finite() {
                    return Err(ServeError::Snapshot(
                        "cache section carries non-finite values".into(),
                    ));
                }
                Some(CacheSnapshot {
                    name: c.name,
                    values,
                    available,
                    imputed,
                    fresh,
                    watermark: c.watermark,
                })
            }
        };
        Ok(Self {
            config: wire.config,
            dims: wire.dims,
            t_len: wire.t_len,
            live_t_len: wire.live_t_len,
            window: wire.window,
            retained_start: wire.retained_start,
            retention: wire.retention,
            shared_std: wire.shared_std,
            params: StoreSnapshot { params },
            cache,
        })
    }
}

/// Decodes the packed weight list shared by the v2 and v3 layouts.
fn unpack_params(wire: Vec<WireParam>) -> Result<Vec<(String, Tensor)>, ServeError> {
    let mut params = Vec::with_capacity(wire.len());
    for p in wire {
        let bytes = base64_decode(&p.data)
            .map_err(|e| ServeError::Snapshot(format!("parameter `{}`: {e}", p.name)))?;
        let expected: usize = p.shape.iter().product();
        if bytes.len() != 8 * expected {
            return Err(ServeError::Snapshot(format!(
                "parameter `{}`: {} bytes do not fill shape {:?}",
                p.name,
                bytes.len(),
                p.shape
            )));
        }
        params.push((p.name, Tensor::from_vec(p.shape, unpack_f64_le(&bytes))));
    }
    Ok(params)
}

/// Decodes one packed f64 cache buffer and checks it fills `shape`.
fn unpack_f64_field(
    data: &str,
    what: &str,
    shape: &[usize],
    cells: usize,
) -> Result<Tensor, ServeError> {
    let bytes = base64_decode(data).map_err(|e| ServeError::Snapshot(format!("{what}: {e}")))?;
    if bytes.len() != 8 * cells {
        return Err(ServeError::Snapshot(format!(
            "{what}: {} bytes do not fill shape {shape:?}",
            bytes.len()
        )));
    }
    Ok(Tensor::from_vec(shape.to_vec(), unpack_f64_le(&bytes)))
}

/// Decodes one bit-packed boolean cache buffer of exactly `n` entries.
fn unpack_bool_field(data: &str, what: &str, n: usize) -> Result<Vec<bool>, ServeError> {
    let bytes = base64_decode(data).map_err(|e| ServeError::Snapshot(format!("{what}: {e}")))?;
    if bytes.len() != n.div_ceil(8) {
        return Err(ServeError::Snapshot(format!(
            "{what}: {} bytes do not hold {n} bits",
            bytes.len()
        )));
    }
    Ok(unpack_bits(&bytes, n))
}

impl crate::ImputationEngine {
    /// Captures the engine's complete serving state as a version-3 snapshot
    /// **with the warm-cache section**: weights, ring geometry, retained
    /// observed data, the imputation cache, window freshness and watermarks.
    /// Restoring it with [`crate::ImputationEngine::from_snapshot`] resumes
    /// serving exactly where this engine stood — cached queries replay with
    /// zero forward passes.
    ///
    /// For a model-only artifact (smaller, no serving state), use
    /// [`ServeSnapshot::capture`] instead.
    ///
    /// ```
    /// use deepmvi::{DeepMviConfig, DeepMviModel};
    /// use mvi_data::generators::{generate_with_shape, DatasetName};
    /// use mvi_data::scenarios::Scenario;
    /// use mvi_serve::{ImputationEngine, ServeSnapshot};
    ///
    /// let ds = generate_with_shape(DatasetName::Gas, &[2], 60, 4);
    /// let obs = Scenario::mcar(1.0).apply(&ds, 1).observed();
    /// let cfg = DeepMviConfig { max_steps: 2, ..DeepMviConfig::tiny() };
    /// let mut model = DeepMviModel::new(&cfg, &obs);
    /// model.fit(&obs);
    /// let engine = ImputationEngine::new(model.freeze(), obs).unwrap();
    /// engine.warm_up(); // cache every window, then persist the warm state
    ///
    /// let json = engine.snapshot().to_json();
    /// // … process restarts …
    /// let snap = ServeSnapshot::from_json(&json).unwrap();
    /// let restarted = ImputationEngine::from_snapshot(&snap).unwrap();
    /// restarted.query(0, 0, 60).unwrap();
    /// assert_eq!(restarted.stats().windows_computed, 0); // zero forward passes
    /// ```
    pub fn snapshot(&self) -> ServeSnapshot {
        let model = self.model().model();
        let (cache, dims, live_t_len, retained_start) = self.cache_snapshot();
        ServeSnapshot {
            config: model.config().clone(),
            dims,
            t_len: model.t_len(),
            live_t_len,
            window: model.window(),
            retained_start,
            retention: self.retention(),
            shared_std: model.shared_std(),
            params: model.export_params(),
            cache: Some(cache),
        }
    }

    /// Rebuilds a serving engine from a warm snapshot
    /// ([`crate::ImputationEngine::snapshot`]): the observed state, the
    /// imputation cache, freshness and watermarks all restore in place, so a
    /// restarted process answers every query its predecessor had cached
    /// **without a single forward pass** (watch
    /// [`crate::EngineStats::windows_computed`] stay at zero). The ring
    /// origin and retention configuration carry over — a bounded engine
    /// restarts bounded, at the same logical stream position.
    ///
    /// # Errors
    /// [`ServeError::Snapshot`] when the snapshot has no cache section or its
    /// cache is inconsistent with the snapshot geometry;
    /// [`ServeError::Geometry`] / [`ServeError::NonFiniteWeights`] from the
    /// model rebuild, as in [`ServeSnapshot::restore`].
    pub fn from_snapshot(snap: &ServeSnapshot) -> Result<Self, ServeError> {
        snap.check_lengths()?;
        let cache = snap.cache.as_ref().ok_or_else(|| {
            ServeError::Snapshot(
                "snapshot has no warm-cache section; restore the model with \
                 ServeSnapshot::restore and build a cold engine with ImputationEngine::new"
                    .into(),
            )
        })?;
        let span = snap.retained_len();
        let series_shape: Vec<usize> = snap.dims.iter().map(DimSpec::len).collect();
        let n_series: usize = series_shape.iter().product();
        let mut tensor_shape = series_shape;
        tensor_shape.push(span);
        if cache.values.shape() != tensor_shape
            || cache.available.shape() != tensor_shape
            || cache.imputed.shape() != tensor_shape
        {
            return Err(ServeError::Snapshot(format!(
                "cache tensors do not match the snapshot geometry {tensor_shape:?}"
            )));
        }
        if snap.window == 0 {
            return Err(ServeError::Snapshot(
                "cache section requires a pinned window width".into(),
            ));
        }
        let n_windows = snap.live_t_len.div_ceil(snap.window) - snap.retained_start / snap.window;
        if cache.fresh.len() != n_series
            || cache.fresh.iter().any(|f| f.len() != n_windows)
            || cache.watermark.len() != n_series
        {
            return Err(ServeError::Snapshot(format!(
                "cache freshness/watermarks do not match {n_series} series x {n_windows} windows"
            )));
        }
        if cache.watermark.iter().any(|&wm| wm < snap.retained_start || wm > snap.live_t_len) {
            return Err(ServeError::Snapshot("cache watermark outside the retained span".into()));
        }
        let obs = ObservedDataset {
            name: cache.name.clone(),
            dims: snap.dims.clone(),
            values: cache.values.clone(),
            available: cache.available.clone(),
        };
        let frozen = snap.rebuild_model(&obs)?;
        if frozen.grid().window_len() != snap.window {
            return Err(ServeError::Snapshot(format!(
                "rebuilt model window {} does not match the pinned width {}",
                frozen.grid().window_len(),
                snap.window
            )));
        }
        Ok(Self::from_parts(
            frozen,
            crate::engine::RestoredParts {
                obs,
                imputed: cache.imputed.clone(),
                fresh: cache.fresh.clone(),
                watermark: cache.watermark.clone(),
                retained_start: snap.retained_start,
                live_t_len: snap.live_t_len,
                retention: snap.retention,
            },
        ))
    }
}

// ---------------------------------------------------------------------------
// Weight packing: little-endian f64 <-> base64 (RFC 4648 standard alphabet,
// padded). Hand-rolled because the offline workspace vendors no base64 crate;
// round-trips are bit-exact, so NaN payloads survive into the finite check.
// Boolean buffers (availability masks, freshness bits) pack 8-to-a-byte,
// LSB-first, before the same base64 step.
// ---------------------------------------------------------------------------

fn pack_bits(bits: &[bool]) -> Vec<u8> {
    let mut bytes = vec![0u8; bits.len().div_ceil(8)];
    for (i, &b) in bits.iter().enumerate() {
        if b {
            bytes[i / 8] |= 1 << (i % 8);
        }
    }
    bytes
}

fn unpack_bits(bytes: &[u8], n: usize) -> Vec<bool> {
    (0..n).map(|i| bytes[i / 8] & (1 << (i % 8)) != 0).collect()
}

fn pack_f64_le(values: &[f64]) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(values.len() * 8);
    for v in values {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    bytes
}

fn unpack_f64_le(bytes: &[u8]) -> Vec<f64> {
    bytes.chunks_exact(8).map(|c| f64::from_le_bytes(c.try_into().expect("8 bytes"))).collect()
}

const B64_ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

fn base64_encode(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len().div_ceil(3) * 4);
    for chunk in bytes.chunks(3) {
        let b1 = chunk[0] as u32;
        let b2 = chunk.get(1).copied().unwrap_or(0) as u32;
        let b3 = chunk.get(2).copied().unwrap_or(0) as u32;
        let n = (b1 << 16) | (b2 << 8) | b3;
        out.push(B64_ALPHABET[(n >> 18) as usize & 63] as char);
        out.push(B64_ALPHABET[(n >> 12) as usize & 63] as char);
        out.push(if chunk.len() > 1 { B64_ALPHABET[(n >> 6) as usize & 63] as char } else { '=' });
        out.push(if chunk.len() > 2 { B64_ALPHABET[n as usize & 63] as char } else { '=' });
    }
    out
}

fn base64_decode(s: &str) -> Result<Vec<u8>, String> {
    fn sextet(c: u8) -> Result<u32, String> {
        match c {
            b'A'..=b'Z' => Ok((c - b'A') as u32),
            b'a'..=b'z' => Ok((c - b'a' + 26) as u32),
            b'0'..=b'9' => Ok((c - b'0' + 52) as u32),
            b'+' => Ok(62),
            b'/' => Ok(63),
            _ => Err(format!("invalid base64 byte `{}`", c as char)),
        }
    }
    let bytes = s.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return Err(format!("base64 length {} is not a multiple of 4", bytes.len()));
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    let n_groups = bytes.len() / 4;
    for (g, chunk) in bytes.chunks_exact(4).enumerate() {
        let pad = chunk.iter().rev().take_while(|&&c| c == b'=').count();
        if pad > 2 || (pad > 0 && g + 1 != n_groups) {
            return Err("misplaced base64 padding".into());
        }
        let mut n = 0u32;
        for (i, &c) in chunk.iter().enumerate() {
            let v = if c == b'=' {
                if i < 4 - pad {
                    return Err("misplaced base64 padding".into());
                }
                0
            } else {
                sextet(c)?
            };
            n = (n << 6) | v;
        }
        out.push((n >> 16) as u8);
        if pad < 2 {
            out.push((n >> 8) as u8);
        }
        if pad < 1 {
            out.push(n as u8);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvi_data::generators::{generate_with_shape, DatasetName};
    use mvi_data::scenarios::Scenario;

    fn trained() -> (ObservedDataset, DeepMviModel) {
        let ds = generate_with_shape(DatasetName::Gas, &[3], 120, 4);
        let inst = Scenario::mcar(1.0).apply(&ds, 1);
        let obs = inst.observed();
        let cfg = DeepMviConfig { max_steps: 5, ..DeepMviConfig::tiny() };
        let mut model = DeepMviModel::new(&cfg, &obs);
        model.fit(&obs);
        (obs, model)
    }

    #[test]
    fn base64_roundtrips_arbitrary_buffers() {
        for len in 0..12 {
            let bytes: Vec<u8> = (0..len).map(|i| (i * 37 + 11) as u8).collect();
            let enc = base64_encode(&bytes);
            assert_eq!(enc.len() % 4, 0);
            assert_eq!(base64_decode(&enc).unwrap(), bytes, "len {len}");
        }
        // Known vector (RFC 4648): "foobar".
        assert_eq!(base64_encode(b"foobar"), "Zm9vYmFy");
        assert_eq!(base64_encode(b"foob"), "Zm9vYg==");
        assert!(base64_decode("Zm9=YQ==").is_err(), "misplaced padding must fail");
        assert!(base64_decode("abc").is_err(), "truncated group must fail");
        assert!(base64_decode("ab!d").is_err(), "bad alphabet must fail");
    }

    #[test]
    fn packed_floats_roundtrip_bit_exactly() {
        let vals = [0.0, -0.0, 1.5, f64::NAN, f64::INFINITY, f64::MIN_POSITIVE, -1e300];
        let back = unpack_f64_le(&pack_f64_le(&vals));
        for (a, b) in vals.iter().zip(&back) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn snapshot_roundtrips_through_json_and_validates_geometry() {
        let (obs, model) = trained();
        let expected = model.impute(&obs);

        let snap = ServeSnapshot::capture(&model, &obs);
        assert_eq!(snap.t_len, snap.live_t_len, "fresh capture has not grown");
        assert_eq!(snap.window, model.window());
        let back = ServeSnapshot::from_json(&snap.to_json()).unwrap();
        let frozen = back.restore(&obs).unwrap();
        assert_eq!(frozen.impute(&obs), expected);

        // Wrong geometry is rejected.
        let other = generate_with_shape(DatasetName::Gas, &[4], 120, 4);
        let other_obs = Scenario::mcar(1.0).apply(&other, 1).observed();
        assert!(matches!(back.restore(&other_obs), Err(ServeError::Geometry(_))));

        let shorter = generate_with_shape(DatasetName::Gas, &[3], 80, 4);
        let shorter_obs = Scenario::mcar(1.0).apply(&shorter, 1).observed();
        assert!(matches!(back.restore(&shorter_obs), Err(ServeError::Geometry(_))));
    }

    #[test]
    fn v2_packing_shrinks_the_artifact() {
        let (obs, model) = trained();
        let snap = ServeSnapshot::capture(&model, &obs);
        let v2 = snap.to_json();
        let v1 = serde_json::to_string(&WireSnapshotV1 {
            config: snap.config.clone(),
            dims: snap.dims.clone(),
            t_len: snap.t_len,
            shared_std: snap.shared_std,
            params: snap.params.clone(),
        })
        .unwrap();
        let raw = 8 * snap.params.params.iter().map(|(_, t)| t.len()).sum::<usize>();
        eprintln!(
            "snapshot sizes: raw weights {raw} B, v1 float-array {} B ({:.2}x raw), v2 packed {} \
             B ({:.2}x raw, {:.2}x smaller than v1)",
            v1.len(),
            v1.len() as f64 / raw as f64,
            v2.len(),
            v2.len() as f64 / raw as f64,
            v1.len() as f64 / v2.len() as f64
        );
        assert!(
            v2.len() < v1.len(),
            "packed snapshot ({}) not smaller than float-array dump ({})",
            v2.len(),
            v1.len()
        );
        // Base64 is 4/3 of raw; everything else (names, shapes, config) is
        // bounded overhead. Guard the packing stays near that bound.
        assert!(
            (v2.len() as f64) < 1.5 * raw as f64 + 4096.0,
            "packed snapshot {} bytes for {} raw weight bytes",
            v2.len(),
            raw
        );
    }

    #[test]
    fn legacy_v2_json_still_loads() {
        let (obs, model) = trained();
        let expected = model.impute(&obs);
        let snap = ServeSnapshot::capture(&model, &obs);
        // Exactly what the v2-era build serialized: packed weights, both
        // lengths, pinned window — no retention fields, no cache.
        let v2_json = serde_json::to_string(&WireSnapshotV2 {
            version: 2,
            config: snap.config.clone(),
            dims: snap.dims.clone(),
            t_len: snap.t_len,
            live_t_len: snap.live_t_len,
            window: snap.window,
            shared_std: snap.shared_std,
            params: snap
                .params
                .params
                .iter()
                .map(|(name, tensor)| WireParam {
                    name: name.clone(),
                    shape: tensor.shape().to_vec(),
                    data: base64_encode(&pack_f64_le(tensor.data())),
                })
                .collect(),
        })
        .unwrap();
        let back = ServeSnapshot::from_json(&v2_json).unwrap();
        assert_eq!(back.retained_start, 0, "v2 states never evicted");
        assert_eq!(back.retention, None);
        assert!(back.cache.is_none(), "v2 has no cache section");
        assert_eq!(back.window, snap.window, "v2 pinned the window");
        let frozen = back.restore(&obs).unwrap();
        assert_eq!(frozen.impute(&obs), expected);
    }

    #[test]
    fn legacy_v3_json_still_loads() {
        let (obs, model) = trained();
        let expected = model.impute(&obs);
        let snap = ServeSnapshot::capture(&model, &obs);
        // Exactly what the v3-era build serialized: packed weights, ring
        // geometry, optional cache — no checksums.
        let v3_json = serde_json::to_string(&WireSnapshotV3 {
            version: 3,
            config: snap.config.clone(),
            dims: snap.dims.clone(),
            t_len: snap.t_len,
            live_t_len: snap.live_t_len,
            window: snap.window,
            retained_start: snap.retained_start,
            retention: snap.retention,
            shared_std: snap.shared_std,
            params: snap
                .params
                .params
                .iter()
                .map(|(name, tensor)| WireParam {
                    name: name.clone(),
                    shape: tensor.shape().to_vec(),
                    data: base64_encode(&pack_f64_le(tensor.data())),
                })
                .collect(),
            cache: None,
        })
        .unwrap();
        let back = ServeSnapshot::from_json(&v3_json).unwrap();
        assert_eq!(back.window, snap.window);
        let frozen = back.restore(&obs).unwrap();
        assert_eq!(frozen.impute(&obs), expected);
    }

    #[test]
    fn checksum_mismatch_is_a_typed_corrupt_error_naming_the_section() {
        let (obs, model) = trained();
        let engine = crate::ImputationEngine::new(model.freeze(), obs).unwrap();
        engine.warm_up();
        let json = engine.snapshot().to_json();
        // Baseline sanity: the untouched artifact parses.
        ServeSnapshot::from_json(&json).expect("pristine v4 parses");

        // Flip one recorded checksum: the named section is reported. (The
        // vendored serde_json has no Value API, so tamper textually.)
        let key = "\"values_crc32\":";
        let i = json.find(key).expect("cache checksum field present") + key.len();
        let end = i + json[i..].find(|c: char| !c.is_ascii_digit()).unwrap();
        let crc: u32 = json[i..end].parse().unwrap();
        let tampered = json.replacen(&format!("{key}{crc}"), &format!("{key}{}", crc ^ 1), 1);
        let err = ServeSnapshot::from_json(&tampered).unwrap_err();
        match err {
            ServeError::Corrupt { section, .. } => assert_eq!(section, "cache.values"),
            other => panic!("expected Corrupt, got {other}"),
        }

        // Swap two payload characters inside the first packed weight buffer
        // (base64 stays valid, bytes change): the per-param checksum catches
        // it. Field order in the wire struct puts params before the cache,
        // so the first "name"/"data" pair after "params" is params[0].
        let pstart = json.find("\"params\":[").unwrap();
        let nkey = "\"name\":\"";
        let ni = pstart + json[pstart..].find(nkey).unwrap() + nkey.len();
        let name = &json[ni..ni + json[ni..].find('"').unwrap()];
        let dkey = "\"data\":\"";
        let di = pstart + json[pstart..].find(dkey).unwrap() + dkey.len();
        let dend = di + json[di..].find('"').unwrap();
        let bytes = json.as_bytes();
        let other = (di + 1..dend)
            .find(|&k| bytes[k] != bytes[di] && bytes[k] != b'=')
            .expect("weight payload is not uniform");
        let mut swapped = json.clone().into_bytes();
        swapped.swap(di, other);
        let err = ServeSnapshot::from_json(&String::from_utf8(swapped).unwrap()).unwrap_err();
        match err {
            ServeError::Corrupt { section, .. } => assert_eq!(section, format!("params/{name}")),
            other => panic!("expected Corrupt, got {other}"),
        }
    }

    #[test]
    fn bit_packing_roundtrips() {
        for n in 0..40usize {
            let bits: Vec<bool> = (0..n).map(|i| (i * 7 + 3) % 5 < 2).collect();
            let bytes = pack_bits(&bits);
            assert_eq!(bytes.len(), n.div_ceil(8));
            assert_eq!(unpack_bits(&bytes, n), bits, "n = {n}");
        }
    }

    #[test]
    fn legacy_v1_json_still_loads() {
        let (obs, model) = trained();
        let expected = model.impute(&obs);
        let snap = ServeSnapshot::capture(&model, &obs);
        // Exactly what the pre-versioning format serialized as.
        let v1_json = serde_json::to_string(&WireSnapshotV1 {
            config: snap.config.clone(),
            dims: snap.dims.clone(),
            t_len: snap.t_len,
            shared_std: snap.shared_std,
            params: snap.params.clone(),
        })
        .unwrap();
        let back = ServeSnapshot::from_json(&v1_json).unwrap();
        assert_eq!(back.live_t_len, back.t_len, "v1 states never grew");
        assert_eq!(back.window, 0, "v1 has no pinned window");
        let frozen = back.restore(&obs).unwrap();
        assert_eq!(frozen.impute(&obs), expected);
        assert_eq!(frozen.shared_std(), snap.shared_std);
    }

    #[test]
    fn future_versions_and_garbled_payloads_are_rejected() {
        let (obs, model) = trained();
        let snap = ServeSnapshot::capture(&model, &obs);
        let json = snap.to_json();
        let future = json.replacen("\"version\":4", "\"version\":99", 1);
        assert!(matches!(
            ServeSnapshot::from_json(&future),
            Err(ServeError::Snapshot(msg)) if msg.contains("version 99")
        ));
        // Corrupt one packed buffer: in v4 the per-section checksum catches
        // it before the shape/byte-count check would.
        let garbled = json.replacen("\"data\":\"", "\"data\":\"AAAA", 1);
        assert!(matches!(ServeSnapshot::from_json(&garbled), Err(ServeError::Corrupt { .. })));
        // An inverted length pair (live < trained) is a typed error on
        // restore, not a panic inside the trained-view truncation.
        let mut inverted = snap.clone();
        inverted.live_t_len = snap.t_len - 20;
        let short_obs = obs.truncated(inverted.live_t_len);
        assert!(matches!(inverted.restore(&short_obs), Err(ServeError::Snapshot(_))));
    }

    #[test]
    fn non_finite_weights_are_rejected_on_restore() {
        let (obs, model) = trained();
        let mut snap = ServeSnapshot::capture(&model, &obs);
        // Poison one weight; v2 base64 packing preserves the NaN bits, so the
        // JSON roundtrip hands the finite check exactly what was written.
        snap.params.params[1].1.data_mut()[0] = f64::NAN;
        let back = ServeSnapshot::from_json(&snap.to_json()).unwrap();
        let poisoned = &back.params.params[1];
        assert!(poisoned.1.data()[0].is_nan(), "NaN lost in the packed roundtrip");
        let err = back.restore(&obs).err().expect("poisoned snapshot must not restore");
        assert_eq!(err, ServeError::NonFiniteWeights { param: poisoned.0.clone() });

        // The v1 path (where JSON turns NaN into null and back into NaN —
        // the original silent-NaN-serving bug) is rejected the same way.
        let v1_json = serde_json::to_string(&WireSnapshotV1 {
            config: snap.config.clone(),
            dims: snap.dims.clone(),
            t_len: snap.t_len,
            shared_std: snap.shared_std,
            params: snap.params.clone(),
        })
        .unwrap();
        let v1_back = ServeSnapshot::from_json(&v1_json).unwrap();
        assert!(matches!(v1_back.restore(&obs), Err(ServeError::NonFiniteWeights { .. })));
        // An infinity is caught too, not just NaN.
        let mut inf = ServeSnapshot::capture(&model, &obs);
        inf.params.params[0].1.data_mut()[2] = f64::INFINITY;
        assert!(matches!(inf.restore(&obs), Err(ServeError::NonFiniteWeights { .. })));
    }

    #[test]
    fn malformed_json_is_a_snapshot_error() {
        assert!(matches!(ServeSnapshot::from_json("{nope"), Err(ServeError::Snapshot(_))));
    }

    #[test]
    fn bounded_engine_over_a_short_history_snapshots_and_restores() {
        // `with_retention` explicitly accepts a dataset *shorter* than the
        // trained length (a retained window of history); its snapshot must
        // round-trip even though live < trained — only unbounded states are
        // held to the never-shrinks rule.
        let (obs, model) = trained();
        let trained_len = obs.t_len();
        let short = obs.truncated(trained_len - 40);
        let engine = crate::ImputationEngine::with_retention(model.freeze(), short.clone(), 30)
            .expect("short bounded engine");
        engine.warm_up();
        let (base, live) = (engine.retained_start(), engine.live_len());
        let served: Vec<Vec<f64>> =
            (0..short.n_series()).map(|s| engine.query(s, base, live).unwrap()).collect();

        let snap = ServeSnapshot::from_json(&engine.snapshot().to_json()).expect("parses");
        assert!(snap.live_t_len < snap.t_len, "fixture must exercise live < trained");
        assert_eq!(snap.retention, Some(30));
        // Model-only restore works against the retained span...
        snap.restore(&engine.observed()).expect("model-only restore of a short bounded state");
        // ...and the warm restart serves identically with zero recompute.
        let restored = crate::ImputationEngine::from_snapshot(&snap).expect("warm restart");
        for (s, expect) in served.iter().enumerate() {
            assert_eq!(&restored.query(s, base, live).unwrap(), expect, "series {s}");
        }
        assert_eq!(restored.stats().windows_computed, 0);
    }

    #[test]
    fn appends_truncated_by_eviction_count_only_recorded_values() {
        let (obs, model) = trained();
        let engine = crate::ImputationEngine::with_retention(model.freeze(), obs.clone(), 10)
            .expect("ring engine");
        let w = engine.grid().window_len();
        let cap = engine.ring_capacity().unwrap();
        // One appended chunk far larger than the whole ring: only its newest
        // retained tail is recorded, and the stats must say so.
        let before = engine.stats().values_appended;
        let huge = vec![1.25; 3 * cap];
        let report = engine.append(0, &huge).unwrap();
        let recorded = report.recorded.1 - report.recorded.0;
        assert!(recorded < huge.len(), "eviction must have dropped a prefix");
        assert!(recorded >= cap - w, "the retained tail of the append survives");
        assert_eq!(
            engine.stats().values_appended - before,
            recorded as u64,
            "values_appended must count recorded values, not the dropped prefix"
        );
    }

    #[test]
    fn warm_cache_snapshot_restores_an_engine_that_recomputes_nothing() {
        let (obs, model) = trained();
        let engine = crate::ImputationEngine::new(model.freeze(), obs.clone()).expect("engine");
        engine.warm_up();
        engine.query(0, 0, obs.t_len()).unwrap();
        let served: Vec<Vec<f64>> =
            (0..obs.n_series()).map(|s| engine.query(s, 0, obs.t_len()).unwrap()).collect();

        // Snapshot with cache → JSON → restored engine.
        let snap = engine.snapshot();
        assert!(snap.cache.is_some());
        let json = snap.to_json();
        let back = ServeSnapshot::from_json(&json).expect("v3 parses");
        let restored = crate::ImputationEngine::from_snapshot(&back).expect("warm restart");

        // Every query answers from the restored cache: zero forward passes.
        for (s, expect) in served.iter().enumerate() {
            assert_eq!(&restored.query(s, 0, obs.t_len()).unwrap(), expect, "series {s}");
        }
        assert_eq!(
            restored.stats().windows_computed,
            0,
            "warm restart recomputed windows it had cached"
        );
        assert_eq!(restored.live_len(), engine.live_len());
        for s in 0..obs.n_series() {
            assert_eq!(restored.watermark(s).unwrap(), engine.watermark(s).unwrap());
        }

        // A model-only capture has no cache section and refuses warm restart.
        let cold =
            ServeSnapshot::from_json(&ServeSnapshot::capture(model_of(&engine), &obs).to_json())
                .unwrap();
        assert!(cold.cache.is_none());
        assert!(matches!(
            crate::ImputationEngine::from_snapshot(&cold),
            Err(ServeError::Snapshot(_))
        ));
    }

    /// Borrow helper: the wrapped trained model of an engine.
    fn model_of(engine: &crate::ImputationEngine) -> &DeepMviModel {
        engine.model().model()
    }
}
