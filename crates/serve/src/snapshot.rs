//! Model persistence for serving: everything a serving process needs to
//! rehydrate a trained DeepMVI model without the training pipeline.
//!
//! [`deepmvi::DeepMviModel::export_params`] captures only the weights; a
//! server additionally needs the configuration the weights were trained under
//! and the dataset geometry they are sized for. [`ServeSnapshot`] bundles all
//! three (plus the trained imputation std-dev) into one serde-serializable
//! artifact, and validates geometry on restore so a snapshot cannot silently
//! be loaded against the wrong tenant's data.

use crate::engine::ServeError;
use deepmvi::{DeepMviConfig, DeepMviModel, FrozenModel};
use mvi_autograd::params::StoreSnapshot;
use mvi_data::dataset::{DimSpec, ObservedDataset};
use serde::{Deserialize, Serialize};

/// A complete, self-describing dump of a trained model for serving.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ServeSnapshot {
    /// Configuration the model was trained under (window rule, module
    /// switches, sizes — everything needed to rebuild identical parameters).
    pub config: DeepMviConfig,
    /// Non-time dimensions of the training dataset.
    pub dims: Vec<DimSpec>,
    /// Series length the model was sized for.
    pub t_len: usize,
    /// Trained shared imputation std-dev (§4), if training captured one.
    pub shared_std: Option<f64>,
    /// The weights.
    pub params: StoreSnapshot,
}

impl ServeSnapshot {
    /// Captures a trained model together with the geometry of the dataset it
    /// was trained on.
    pub fn capture(model: &DeepMviModel, obs: &ObservedDataset) -> Self {
        Self {
            config: model.config().clone(),
            dims: obs.dims.clone(),
            t_len: obs.t_len(),
            shared_std: model.shared_std(),
            params: model.export_params(),
        }
    }

    /// Rehydrates a frozen model against `obs`, validating that the dataset
    /// geometry matches what the weights were trained for.
    ///
    /// # Errors
    /// [`ServeError::Geometry`] on a dimension/length mismatch or a weight
    /// snapshot that does not fit the rebuilt parameter layout.
    pub fn restore(&self, obs: &ObservedDataset) -> Result<FrozenModel, ServeError> {
        if obs.dims != self.dims {
            return Err(ServeError::Geometry(format!(
                "dataset dims {:?} do not match snapshot dims {:?}",
                obs.dims.iter().map(|d| (d.name.as_str(), d.len())).collect::<Vec<_>>(),
                self.dims.iter().map(|d| (d.name.as_str(), d.len())).collect::<Vec<_>>(),
            )));
        }
        if obs.t_len() != self.t_len {
            return Err(ServeError::Geometry(format!(
                "dataset t_len {} does not match snapshot t_len {}",
                obs.t_len(),
                self.t_len
            )));
        }
        FrozenModel::from_snapshot(&self.config, obs, &self.params, self.shared_std)
            .map_err(ServeError::Geometry)
    }

    /// Serializes to JSON (any serde format works; JSON is what the examples
    /// and the offline workspace shim support out of the box).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("snapshot serialization cannot fail")
    }

    /// Parses a snapshot serialized with [`ServeSnapshot::to_json`].
    ///
    /// # Errors
    /// [`ServeError::Snapshot`] when the JSON does not parse into a snapshot.
    pub fn from_json(json: &str) -> Result<Self, ServeError> {
        serde_json::from_str(json).map_err(|e| ServeError::Snapshot(format!("{e:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mvi_data::generators::{generate_with_shape, DatasetName};
    use mvi_data::scenarios::Scenario;

    #[test]
    fn snapshot_roundtrips_through_json_and_validates_geometry() {
        let ds = generate_with_shape(DatasetName::Gas, &[3], 120, 4);
        let inst = Scenario::mcar(1.0).apply(&ds, 1);
        let obs = inst.observed();
        let cfg = DeepMviConfig { max_steps: 5, ..DeepMviConfig::tiny() };
        let mut model = DeepMviModel::new(&cfg, &obs);
        model.fit(&obs);
        let expected = model.impute(&obs);

        let snap = ServeSnapshot::capture(&model, &obs);
        let back = ServeSnapshot::from_json(&snap.to_json()).unwrap();
        let frozen = back.restore(&obs).unwrap();
        assert_eq!(frozen.impute(&obs), expected);

        // Wrong geometry is rejected.
        let other = generate_with_shape(DatasetName::Gas, &[4], 120, 4);
        let other_obs = Scenario::mcar(1.0).apply(&other, 1).observed();
        assert!(matches!(back.restore(&other_obs), Err(ServeError::Geometry(_))));

        let shorter = generate_with_shape(DatasetName::Gas, &[3], 80, 4);
        let shorter_obs = Scenario::mcar(1.0).apply(&shorter, 1).observed();
        assert!(matches!(back.restore(&shorter_obs), Err(ServeError::Geometry(_))));
    }

    #[test]
    fn malformed_json_is_a_snapshot_error() {
        assert!(matches!(ServeSnapshot::from_json("{nope"), Err(ServeError::Snapshot(_))));
    }
}
