//! Dense n-dimensional tensors and boolean masks for multidimensional time series.
//!
//! The paper models a dataset as an (n+1)-dimensional real tensor `X` with shape
//! `(K_1, ..., K_n, T)` where the last axis is a regularly spaced time index, together
//! with availability/missing indicator tensors `A` and `M` of the same shape (§2.1).
//! This crate provides exactly those building blocks:
//!
//! * [`Tensor`] — a row-major dense `f64` tensor. Because time is the innermost axis,
//!   every individual time series is a contiguous slice, which every downstream
//!   algorithm (window convolutions, Kalman filters, matrix decompositions) exploits.
//! * [`Mask`] — a same-shaped boolean tensor used for both the availability tensor `A`
//!   and the missing tensor `M`.
//! * [`shape`] — flat-index arithmetic shared by both.
//!
//! The crate sits near the bottom of the workspace dependency graph: its only
//! dependencies are `serde` (for experiment reports) and `mvi-kernels`, whose fused
//! slice primitives back the elementwise hot paths (`axpy`, `add_assign`,
//! `frobenius_norm`).

#![warn(missing_docs)]

pub mod mask;
pub mod shape;
pub mod tensor;

pub use mask::Mask;
pub use tensor::Tensor;
