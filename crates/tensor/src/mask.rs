//! Boolean tensors for the availability (`A`) and missing (`M`) indicators of §2.1.

use crate::shape;
use serde::{Deserialize, Serialize};

/// A dense boolean tensor with the same row-major layout as [`crate::Tensor`].
///
/// By convention the workspace uses `true` in an *availability* mask to mean "value is
/// observed" and `true` in a *missing* mask to mean "value is hidden"; the two are
/// complements ([`Mask::complement`]).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mask {
    shape: Vec<usize>,
    data: Vec<bool>,
}

impl Mask {
    /// Mask of the given shape filled with `value`.
    pub fn full(shape: &[usize], value: bool) -> Self {
        Self { shape: shape.to_vec(), data: vec![value; shape::num_elements(shape)] }
    }

    /// All-`true` mask (everything available / everything missing).
    pub fn trues(shape: &[usize]) -> Self {
        Self::full(shape, true)
    }

    /// All-`false` mask.
    pub fn falses(shape: &[usize]) -> Self {
        Self::full(shape, false)
    }

    /// Re-shapes the mask in place to `shape` with every entry `false`,
    /// reusing the shape and data allocations (no heap traffic once the
    /// buffer has seen its largest shape). Scratch-reuse counterpart of
    /// [`crate::Tensor::reset_zeroed`] for the attention availability mask
    /// rebuilt on every window forward pass.
    pub fn reset_falses(&mut self, shape: &[usize]) {
        let vol = shape::num_elements(shape);
        self.data.clear();
        self.data.resize(vol, false);
        self.shape.clear();
        self.shape.extend_from_slice(shape);
    }

    /// Mask from a shape and backing data.
    ///
    /// # Panics
    /// Panics if `data.len()` does not match the shape volume.
    pub fn from_vec(shape: Vec<usize>, data: Vec<bool>) -> Self {
        assert_eq!(shape::num_elements(&shape), data.len(), "mask shape/data mismatch");
        Self { shape, data }
    }

    /// The mask shape.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Total number of entries.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the mask holds no entries.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing buffer.
    #[inline]
    pub fn data(&self) -> &[bool] {
        &self.data
    }

    /// Mutable view of the backing buffer (bulk fills on hot paths).
    #[inline]
    pub fn data_mut(&mut self) -> &mut [bool] {
        &mut self.data
    }

    /// Entry at a multi-index.
    #[inline]
    pub fn get(&self, idx: &[usize]) -> bool {
        self.data[shape::flat_index(&self.shape, idx)]
    }

    /// Sets the entry at a multi-index.
    #[inline]
    pub fn set(&mut self, idx: &[usize], value: bool) {
        let flat = shape::flat_index(&self.shape, idx);
        self.data[flat] = value;
    }

    /// Entry at a flat offset.
    #[inline]
    pub fn at(&self, flat: usize) -> bool {
        self.data[flat]
    }

    /// Sets the entry at a flat offset.
    #[inline]
    pub fn set_at(&mut self, flat: usize, value: bool) {
        self.data[flat] = value;
    }

    /// Number of `true` entries.
    pub fn count(&self) -> usize {
        self.data.iter().filter(|&&b| b).count()
    }

    /// Fraction of `true` entries (0 for empty masks).
    pub fn fraction(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.count() as f64 / self.data.len() as f64
        }
    }

    /// True when every entry is `true`.
    pub fn all(&self) -> bool {
        self.data.iter().all(|&b| b)
    }

    /// True when at least one entry is `true`.
    pub fn any(&self) -> bool {
        self.data.iter().any(|&b| b)
    }

    /// Logical negation: turns an availability mask into a missing mask and back.
    pub fn complement(&self) -> Self {
        Self { shape: self.shape.clone(), data: self.data.iter().map(|&b| !b).collect() }
    }

    /// Elementwise AND with another same-shaped mask.
    pub fn and(&self, other: &Self) -> Self {
        assert_eq!(self.shape, other.shape, "mask and() shape mismatch");
        let data = self.data.iter().zip(&other.data).map(|(&a, &b)| a && b).collect();
        Self { shape: self.shape.clone(), data }
    }

    /// Elementwise OR with another same-shaped mask.
    pub fn or(&self, other: &Self) -> Self {
        assert_eq!(self.shape, other.shape, "mask or() shape mismatch");
        let data = self.data.iter().zip(&other.data).map(|(&a, &b)| a || b).collect();
        Self { shape: self.shape.clone(), data }
    }

    /// Flat offsets of all `true` entries, in row-major order.
    pub fn true_indices(&self) -> Vec<usize> {
        self.data.iter().enumerate().filter_map(|(i, &b)| if b { Some(i) } else { None }).collect()
    }

    // ------------------------------------------------------------------
    // Time-series access (time = last axis), mirroring Tensor.
    // ------------------------------------------------------------------

    /// Number of series (product of the non-time axes).
    pub fn n_series(&self) -> usize {
        let (series_shape, _) = shape::split_time(&self.shape);
        shape::num_elements(series_shape)
    }

    /// Length of the time axis.
    pub fn t_len(&self) -> usize {
        let (_, t) = shape::split_time(&self.shape);
        t
    }

    /// Grows the time (last) axis to `new_t_len` in place, preserving every
    /// series prefix and filling the appended suffix of each series with
    /// `value` (mirrors [`crate::Tensor::extend_time`]; callers growing a
    /// stream should grow geometrically for amortized O(1) per element).
    ///
    /// # Panics
    /// Panics if `new_t_len` is smaller than the current time axis.
    pub fn extend_time(&mut self, new_t_len: usize, value: bool) {
        let (series_shape, old_t) = shape::split_time(&self.shape);
        assert!(
            new_t_len >= old_t,
            "extend_time {old_t} -> {new_t_len} would shrink the time axis"
        );
        if new_t_len == old_t {
            return;
        }
        let n = shape::num_elements(series_shape);
        self.data.resize(n * new_t_len, value);
        for s in (1..n).rev() {
            self.data.copy_within(s * old_t..(s + 1) * old_t, s * new_t_len);
        }
        for s in 0..n {
            self.data[s * new_t_len + old_t..(s + 1) * new_t_len].fill(value);
        }
        let last = self.shape.len() - 1;
        self.shape[last] = new_t_len;
    }

    /// Drops the *oldest* time steps in place, keeping only the last
    /// `new_t_len` steps of every series (mirrors
    /// [`crate::Tensor::retain_latest`] — the ring-eviction primitive). The
    /// allocation is reused, so a later `extend_time` back to the old length
    /// touches no allocator.
    ///
    /// # Panics
    /// Panics if `new_t_len` exceeds the current time axis.
    pub fn retain_latest(&mut self, new_t_len: usize) {
        let (series_shape, old_t) = shape::split_time(&self.shape);
        assert!(
            new_t_len <= old_t,
            "retain_latest {old_t} -> {new_t_len} would grow the time axis"
        );
        if new_t_len == old_t {
            return;
        }
        let n = shape::num_elements(series_shape);
        let drop = old_t - new_t_len;
        for s in 0..n {
            self.data.copy_within(s * old_t + drop..(s + 1) * old_t, s * new_t_len);
        }
        self.data.truncate(n * new_t_len);
        let last = self.shape.len() - 1;
        self.shape[last] = new_t_len;
    }

    /// A copy truncated along the time (last) axis to its first `new_t_len`
    /// steps (mirrors [`crate::Tensor::truncated_time`]).
    ///
    /// # Panics
    /// Panics if `new_t_len` exceeds the current time axis.
    pub fn truncated_time(&self, new_t_len: usize) -> Self {
        let (series_shape, old_t) = shape::split_time(&self.shape);
        assert!(
            new_t_len <= old_t,
            "truncated_time {old_t} -> {new_t_len} would grow the time axis"
        );
        let n = shape::num_elements(series_shape);
        let mut data = Vec::with_capacity(n * new_t_len);
        for s in 0..n {
            data.extend_from_slice(&self.data[s * old_t..s * old_t + new_t_len]);
        }
        let mut new_shape = self.shape.clone();
        let last = new_shape.len() - 1;
        new_shape[last] = new_t_len;
        Self { shape: new_shape, data }
    }

    /// The `s`-th series of the mask as a contiguous slice.
    #[inline]
    pub fn series(&self, s: usize) -> &[bool] {
        let t = self.t_len();
        &self.data[s * t..(s + 1) * t]
    }

    /// Sets `[start, end)` of series `s` to `value`.
    pub fn set_range(&mut self, s: usize, start: usize, end: usize, value: bool) {
        let t = self.t_len();
        assert!(start <= end && end <= t, "range {start}..{end} out of series length {t}");
        for x in &mut self.data[s * t + start..s * t + end] {
            *x = value;
        }
    }

    /// Maximal runs of `true` entries in series `s`, as `(start, len)` pairs.
    ///
    /// Used both to enumerate missing blocks for imputation and to build the empirical
    /// block-shape distribution for the synthetic-training-mask sampler (§3).
    pub fn runs(&self, s: usize) -> Vec<(usize, usize)> {
        self.runs_of_in(s, 0, self.t_len(), true)
    }

    /// Maximal runs of `true` entries in series `s` clipped to `[start, end)`,
    /// as `(start, len)` pairs. A run straddling the range boundary is
    /// truncated to the part inside the range.
    ///
    /// This is the windowed view of [`Mask::runs`]: streaming/tail imputation
    /// only needs the runs inside the affected suffix, and a clipped
    /// enumeration avoids rescanning the whole series per update.
    pub fn runs_in(&self, s: usize, start: usize, end: usize) -> Vec<(usize, usize)> {
        self.runs_of_in(s, start, end, true)
    }

    /// Maximal runs of `false` entries in series `s` clipped to `[start, end)`
    /// — the *missing* runs of an availability mask, enumerated directly so
    /// hot read paths need not allocate a full [`Mask::complement`].
    pub fn gap_runs_in(&self, s: usize, start: usize, end: usize) -> Vec<(usize, usize)> {
        self.runs_of_in(s, start, end, false)
    }

    /// Shared scan behind the run enumerations: maximal runs of entries equal
    /// to `target` within `[start, end)` of series `s`.
    fn runs_of_in(&self, s: usize, start: usize, end: usize, target: bool) -> Vec<(usize, usize)> {
        let t = self.t_len();
        assert!(start <= end && end <= t, "range {start}..{end} out of series length {t}");
        let series = &self.series(s)[start..end];
        let mut runs = Vec::new();
        let mut run_start = None;
        for (off, &b) in series.iter().enumerate() {
            match (b == target, run_start) {
                (true, None) => run_start = Some(start + off),
                (false, Some(st)) => {
                    runs.push((st, start + off - st));
                    run_start = None;
                }
                _ => {}
            }
        }
        if let Some(st) = run_start {
            runs.push((st, end - st));
        }
        runs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn count_and_fraction() {
        let mut m = Mask::falses(&[2, 5]);
        m.set(&[0, 1], true);
        m.set(&[1, 4], true);
        assert_eq!(m.count(), 2);
        assert!((m.fraction() - 0.2).abs() < 1e-12);
        assert!(m.any());
        assert!(!m.all());
    }

    #[test]
    fn complement_is_involution() {
        let mut m = Mask::falses(&[3, 3]);
        m.set(&[1, 1], true);
        assert_eq!(m.complement().complement(), m);
        assert_eq!(m.complement().count(), 8);
    }

    #[test]
    fn and_or() {
        let mut a = Mask::falses(&[4]);
        let mut b = Mask::falses(&[4]);
        a.set(&[0], true);
        a.set(&[1], true);
        b.set(&[1], true);
        b.set(&[2], true);
        assert_eq!(a.and(&b).true_indices(), vec![1]);
        assert_eq!(a.or(&b).true_indices(), vec![0, 1, 2]);
    }

    #[test]
    fn runs_detects_blocks() {
        let mut m = Mask::falses(&[1, 10]);
        m.set_range(0, 2, 5, true);
        m.set_range(0, 8, 10, true);
        assert_eq!(m.runs(0), vec![(2, 3), (8, 2)]);
        assert_eq!(Mask::trues(&[1, 4]).runs(0), vec![(0, 4)]);
        assert_eq!(Mask::falses(&[1, 4]).runs(0), vec![]);
    }

    #[test]
    fn runs_in_clips_to_the_range() {
        let mut m = Mask::falses(&[1, 12]);
        m.set_range(0, 2, 6, true);
        m.set_range(0, 9, 12, true);
        assert_eq!(m.runs_in(0, 0, 12), m.runs(0));
        // Straddling runs are truncated on both sides.
        assert_eq!(m.runs_in(0, 4, 10), vec![(4, 2), (9, 1)]);
        // A range inside one run yields the clipped run.
        assert_eq!(m.runs_in(0, 3, 5), vec![(3, 2)]);
        // Empty and all-false ranges yield nothing.
        assert_eq!(m.runs_in(0, 6, 6), vec![]);
        assert_eq!(m.runs_in(0, 6, 9), vec![]);
    }

    #[test]
    fn gap_runs_are_the_complement_runs() {
        let mut m = Mask::trues(&[1, 12]);
        m.set_range(0, 3, 6, false);
        m.set_range(0, 10, 12, false);
        assert_eq!(m.gap_runs_in(0, 0, 12), m.complement().runs(0));
        assert_eq!(m.gap_runs_in(0, 4, 11), vec![(4, 2), (10, 1)]);
        assert_eq!(m.gap_runs_in(0, 0, 3), vec![]);
    }

    #[test]
    fn extend_time_preserves_series_and_truncate_inverts() {
        let mut m = Mask::falses(&[2, 3, 4]);
        m.set(&[0, 1, 3], true);
        m.set(&[1, 2, 0], true);
        let original = m.clone();
        m.extend_time(6, false);
        assert_eq!(m.shape(), &[2, 3, 6]);
        assert!(m.get(&[0, 1, 3]));
        assert!(m.get(&[1, 2, 0]));
        assert_eq!(m.count(), 2, "extension must not invent entries");
        assert_eq!(m.truncated_time(4), original);
        // Growing with `true` marks only the new suffix.
        let mut t = original.clone();
        t.extend_time(5, true);
        assert_eq!(t.count(), 2 + 6, "one new step per series marked true");
    }

    #[test]
    fn retain_latest_keeps_the_newest_suffix() {
        let mut m = Mask::falses(&[2, 6]);
        m.set_range(0, 0, 2, true); // oldest entries: evicted below
        m.set_range(0, 4, 6, true);
        m.set_range(1, 3, 4, true);
        let original = m.clone();
        m.retain_latest(3);
        assert_eq!(m.shape(), &[2, 3]);
        assert_eq!(m.series(0), &original.series(0)[3..]);
        assert_eq!(m.series(1), &original.series(1)[3..]);
        assert_eq!(m.count(), 3, "only the retained trues survive");
        // Growing back opens an all-`value` suffix.
        m.extend_time(6, false);
        assert_eq!(m.count(), 3);
        assert!(m.series(0)[3..].iter().all(|&b| !b));
    }

    #[test]
    #[should_panic(expected = "grow the time axis")]
    fn retain_latest_rejects_growing() {
        Mask::falses(&[2, 5]).retain_latest(6);
    }

    #[test]
    fn set_range_touches_only_target_series() {
        let mut m = Mask::falses(&[3, 6]);
        m.set_range(1, 0, 6, true);
        assert_eq!(m.series(0).iter().filter(|&&b| b).count(), 0);
        assert_eq!(m.series(1).iter().filter(|&&b| b).count(), 6);
        assert_eq!(m.series(2).iter().filter(|&&b| b).count(), 0);
    }

    proptest! {
        #[test]
        fn prop_runs_reconstruct_mask(bits in proptest::collection::vec(any::<bool>(), 1..64)) {
            let m = Mask::from_vec(vec![1, bits.len()], bits.clone());
            let mut rebuilt = vec![false; bits.len()];
            for (start, len) in m.runs(0) {
                for x in &mut rebuilt[start..start + len] {
                    *x = true;
                }
            }
            prop_assert_eq!(rebuilt, bits);
        }

        #[test]
        fn prop_complement_partitions(bits in proptest::collection::vec(any::<bool>(), 1..64)) {
            let m = Mask::from_vec(vec![bits.len()], bits);
            prop_assert_eq!(m.count() + m.complement().count(), m.len());
            prop_assert!(!m.and(&m.complement()).any());
            prop_assert!(m.or(&m.complement()).all());
        }
    }
}
