//! Flat-index arithmetic for row-major shapes.
//!
//! Shapes are plain `&[usize]` slices; an empty shape denotes a scalar. All helpers
//! here are pure functions so that [`crate::Tensor`] and [`crate::Mask`] can share
//! them without a common base type.

/// Number of elements a shape describes (product of extents; 1 for a scalar).
#[inline]
pub fn num_elements(shape: &[usize]) -> usize {
    shape.iter().product()
}

/// Row-major strides for `shape`: `strides[i]` is the flat distance between two
/// elements that differ by one along axis `i`.
pub fn strides(shape: &[usize]) -> Vec<usize> {
    let mut s = vec![1usize; shape.len()];
    for i in (0..shape.len().saturating_sub(1)).rev() {
        s[i] = s[i + 1] * shape[i + 1];
    }
    s
}

/// Flat (row-major) offset of the multi-index `idx` inside `shape`.
///
/// # Panics
/// Panics if `idx.len() != shape.len()` or any coordinate is out of bounds.
#[inline]
pub fn flat_index(shape: &[usize], idx: &[usize]) -> usize {
    assert_eq!(
        idx.len(),
        shape.len(),
        "index rank {} does not match shape rank {}",
        idx.len(),
        shape.len()
    );
    let mut flat = 0usize;
    for (axis, (&i, &extent)) in idx.iter().zip(shape.iter()).enumerate() {
        assert!(i < extent, "index {i} out of bounds for axis {axis} (extent {extent})");
        flat = flat * extent + i;
    }
    flat
}

/// Inverse of [`flat_index`]: the multi-index corresponding to a flat offset.
pub fn unflatten(shape: &[usize], flat: usize) -> Vec<usize> {
    let mut idx = Vec::new();
    unflatten_into(shape, flat, &mut idx);
    idx
}

/// [`unflatten`] into a caller-provided buffer (cleared first), so hot paths
/// can reuse one index vector instead of allocating per call.
pub fn unflatten_into(shape: &[usize], mut flat: usize, idx: &mut Vec<usize>) {
    idx.clear();
    idx.resize(shape.len(), 0);
    for axis in (0..shape.len()).rev() {
        let extent = shape[axis];
        idx[axis] = flat % extent;
        flat /= extent;
    }
    debug_assert_eq!(flat, 0, "flat offset exceeded shape volume");
}

/// Iterator over all multi-indices of `shape` in row-major order.
pub fn indices(shape: &[usize]) -> impl Iterator<Item = Vec<usize>> + '_ {
    let total = num_elements(shape);
    (0..total).map(move |flat| unflatten(shape, flat))
}

/// Splits the shape of a time-series tensor `(K_1,...,K_n,T)` into the series shape
/// `(K_1,...,K_n)` and the series length `T`.
///
/// # Panics
/// Panics on scalar shapes (a time-series tensor has at least the time axis).
pub fn split_time(shape: &[usize]) -> (&[usize], usize) {
    assert!(!shape.is_empty(), "a time-series tensor needs at least one axis");
    let (series, time) = shape.split_at(shape.len() - 1);
    (series, time[0])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strides_row_major() {
        assert_eq!(strides(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(strides(&[7]), vec![1]);
        assert_eq!(strides(&[]), Vec::<usize>::new());
    }

    #[test]
    fn flat_roundtrip() {
        let shape = [3usize, 4, 5];
        for flat in 0..num_elements(&shape) {
            let idx = unflatten(&shape, flat);
            assert_eq!(flat_index(&shape, &idx), flat);
        }
    }

    #[test]
    fn indices_cover_volume_in_order() {
        let shape = [2usize, 3];
        let all: Vec<Vec<usize>> = indices(&shape).collect();
        assert_eq!(all.len(), 6);
        assert_eq!(all[0], vec![0, 0]);
        assert_eq!(all[1], vec![0, 1]);
        assert_eq!(all[5], vec![1, 2]);
    }

    #[test]
    fn split_time_separates_series_axes() {
        let (series, t) = split_time(&[76, 28, 134]);
        assert_eq!(series, &[76, 28]);
        assert_eq!(t, 134);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn flat_index_bounds_checked() {
        flat_index(&[2, 2], &[2, 0]);
    }

    #[test]
    #[should_panic(expected = "rank")]
    fn flat_index_rank_checked() {
        flat_index(&[2, 2], &[0]);
    }
}
