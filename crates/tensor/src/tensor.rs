//! The dense row-major `f64` tensor used throughout the workspace.

use crate::shape;
use serde::{Deserialize, Serialize};

/// A dense, row-major, heap-allocated `f64` tensor.
///
/// The time axis of a dataset tensor is always the *last* axis, so a single series
/// `X_{k,•}` is the contiguous slice returned by [`Tensor::series`]. Matrices used by
/// the linear-algebra crate are rank-2 tensors `[rows, cols]`.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f64>,
}

impl Tensor {
    /// Creates a tensor from a shape and backing data.
    ///
    /// # Panics
    /// Panics if `data.len()` does not equal the shape volume.
    pub fn from_vec(shape: Vec<usize>, data: Vec<f64>) -> Self {
        assert_eq!(
            shape::num_elements(&shape),
            data.len(),
            "shape {:?} needs {} elements, got {}",
            shape,
            shape::num_elements(&shape),
            data.len()
        );
        Self { shape, data }
    }

    /// All-zeros tensor of the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        Self { shape: shape.to_vec(), data: vec![0.0; shape::num_elements(shape)] }
    }

    /// Tensor filled with `value`.
    pub fn full(shape: &[usize], value: f64) -> Self {
        Self { shape: shape.to_vec(), data: vec![value; shape::num_elements(shape)] }
    }

    /// Tensor whose element at multi-index `idx` is `f(&idx)`.
    pub fn from_fn(shape: &[usize], mut f: impl FnMut(&[usize]) -> f64) -> Self {
        let mut data = Vec::with_capacity(shape::num_elements(shape));
        for idx in shape::indices(shape) {
            data.push(f(&idx));
        }
        Self { shape: shape.to_vec(), data }
    }

    /// Rank-1 tensor wrapping a vector.
    pub fn from_slice(v: &[f64]) -> Self {
        Self { shape: vec![v.len()], data: v.to_vec() }
    }

    /// Scalar (rank-1, single element) tensor — the canonical loss/score shape.
    pub fn scalar(v: f64) -> Self {
        Self { shape: vec![1], data: vec![v] }
    }

    /// The tensor shape.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of axes.
    #[inline]
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor holds no elements (some axis has extent zero).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable view of the backing row-major buffer.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the backing row-major buffer.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the tensor, returning the backing buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Element at a multi-index.
    #[inline]
    pub fn get(&self, idx: &[usize]) -> f64 {
        self.data[shape::flat_index(&self.shape, idx)]
    }

    /// Sets the element at a multi-index.
    #[inline]
    pub fn set(&mut self, idx: &[usize], value: f64) {
        let flat = shape::flat_index(&self.shape, idx);
        self.data[flat] = value;
    }

    /// Element at a flat row-major offset.
    #[inline]
    pub fn at(&self, flat: usize) -> f64 {
        self.data[flat]
    }

    /// Re-shapes the tensor in place for reuse as a scratch buffer, leaving
    /// the element values **unspecified** (whatever the previous use left
    /// behind, zero-extended if the buffer grows). Reuses both the shape and
    /// data allocations, so once a buffer has seen its largest shape this
    /// never touches the heap — the recycling primitive behind the value-only
    /// forward evaluator's slot arena. Callers must overwrite every element
    /// (or use [`Tensor::reset_zeroed`]).
    pub fn reset_for_overwrite(&mut self, shape: &[usize]) {
        let vol = shape::num_elements(shape);
        self.data.resize(vol, 0.0);
        self.shape.clear();
        self.shape.extend_from_slice(shape);
    }

    /// Like [`Tensor::reset_for_overwrite`], but leaves the buffer all-zero
    /// (the required starting state for accumulating kernels like GEMM).
    pub fn reset_zeroed(&mut self, shape: &[usize]) {
        self.reset_for_overwrite(shape);
        self.data.fill(0.0);
    }

    /// Reinterprets the tensor under a new shape with the same volume.
    ///
    /// # Panics
    /// Panics if the volumes differ.
    pub fn reshape(mut self, new_shape: &[usize]) -> Self {
        assert_eq!(
            shape::num_elements(new_shape),
            self.data.len(),
            "reshape {:?} -> {:?} changes volume",
            self.shape,
            new_shape
        );
        self.shape = new_shape.to_vec();
        self
    }

    // ------------------------------------------------------------------
    // Time-series access (time = last axis)
    // ------------------------------------------------------------------

    /// Number of series: the product of all axes except the last (time) axis.
    pub fn n_series(&self) -> usize {
        let (series_shape, _) = shape::split_time(&self.shape);
        shape::num_elements(series_shape)
    }

    /// Length of the time axis.
    pub fn t_len(&self) -> usize {
        let (_, t) = shape::split_time(&self.shape);
        t
    }

    /// Grows the time (last) axis to `new_t_len` in place, preserving every
    /// series prefix and filling the appended suffix of each series with
    /// `fill`.
    ///
    /// One call moves every element once (series stay contiguous under the
    /// row-major layout, so they shift toward the back); callers that grow a
    /// stream repeatedly should grow geometrically and track the live length
    /// separately, which makes the per-appended-element cost amortized O(1)
    /// (the serving engine does exactly this).
    ///
    /// # Panics
    /// Panics if `new_t_len` is smaller than the current time axis.
    pub fn extend_time(&mut self, new_t_len: usize, fill: f64) {
        let (series_shape, old_t) = shape::split_time(&self.shape);
        assert!(
            new_t_len >= old_t,
            "extend_time {old_t} -> {new_t_len} would shrink the time axis"
        );
        if new_t_len == old_t {
            return;
        }
        let n = shape::num_elements(series_shape);
        self.data.resize(n * new_t_len, fill);
        // Shift series back-to-front (each new start is at or past the old
        // one, and higher series have already vacated their old slots), then
        // overwrite the per-series gaps left between old payload and the next
        // series' new start.
        for s in (1..n).rev() {
            self.data.copy_within(s * old_t..(s + 1) * old_t, s * new_t_len);
        }
        for s in 0..n {
            self.data[s * new_t_len + old_t..(s + 1) * new_t_len].fill(fill);
        }
        let last = self.shape.len() - 1;
        self.shape[last] = new_t_len;
    }

    /// Drops the *oldest* time steps in place, keeping only the last
    /// `new_t_len` steps of every series — the front-truncation counterpart of
    /// [`Tensor::extend_time`] and the eviction primitive behind the serving
    /// engine's retention ring: advancing the ring origin is
    /// `retain_latest(capacity - drop)` followed by `extend_time(capacity, _)`
    /// to re-open the vacated slack.
    ///
    /// Runs in one backing-buffer pass (series slide front-to-back under the
    /// row-major layout) and reuses the allocation: the buffer shrinks
    /// logically but its capacity is kept, so a later `extend_time` back to
    /// the old length touches no allocator.
    ///
    /// ```
    /// # use mvi_tensor::Tensor;
    /// let mut t = Tensor::from_vec(vec![2, 4], vec![0., 1., 2., 3., 10., 11., 12., 13.]);
    /// t.retain_latest(2); // keep the newest two steps of each series
    /// assert_eq!(t.shape(), &[2, 2]);
    /// assert_eq!(t.data(), &[2., 3., 12., 13.]);
    /// ```
    ///
    /// # Panics
    /// Panics if `new_t_len` exceeds the current time axis.
    pub fn retain_latest(&mut self, new_t_len: usize) {
        let (series_shape, old_t) = shape::split_time(&self.shape);
        assert!(
            new_t_len <= old_t,
            "retain_latest {old_t} -> {new_t_len} would grow the time axis"
        );
        if new_t_len == old_t {
            return;
        }
        let n = shape::num_elements(series_shape);
        let drop = old_t - new_t_len;
        // Front-to-back: each destination start is at or before the source
        // start, and lower series have already vacated their old slots.
        for s in 0..n {
            self.data.copy_within(s * old_t + drop..(s + 1) * old_t, s * new_t_len);
        }
        self.data.truncate(n * new_t_len);
        let last = self.shape.len() - 1;
        self.shape[last] = new_t_len;
    }

    /// A copy truncated along the time (last) axis to its first `new_t_len`
    /// steps — the inverse view of [`Tensor::extend_time`], used to recover
    /// the live prefix from capacity-padded storage.
    ///
    /// # Panics
    /// Panics if `new_t_len` exceeds the current time axis.
    pub fn truncated_time(&self, new_t_len: usize) -> Self {
        let (series_shape, old_t) = shape::split_time(&self.shape);
        assert!(
            new_t_len <= old_t,
            "truncated_time {old_t} -> {new_t_len} would grow the time axis"
        );
        let n = shape::num_elements(series_shape);
        let mut data = Vec::with_capacity(n * new_t_len);
        for s in 0..n {
            data.extend_from_slice(&self.data[s * old_t..s * old_t + new_t_len]);
        }
        let mut new_shape = self.shape.clone();
        let last = new_shape.len() - 1;
        new_shape[last] = new_t_len;
        Self { shape: new_shape, data }
    }

    /// The `s`-th series as a contiguous slice of length [`Tensor::t_len`].
    ///
    /// Series are numbered in row-major order over the non-time axes, i.e. series `s`
    /// corresponds to the multi-index `shape::unflatten(series_shape, s)`.
    #[inline]
    pub fn series(&self, s: usize) -> &[f64] {
        let t = self.t_len();
        &self.data[s * t..(s + 1) * t]
    }

    /// Mutable access to the `s`-th series.
    #[inline]
    pub fn series_mut(&mut self, s: usize) -> &mut [f64] {
        let t = self.t_len();
        &mut self.data[s * t..(s + 1) * t]
    }

    // ------------------------------------------------------------------
    // Rank-2 (matrix) access
    // ------------------------------------------------------------------

    /// Rows of a rank-2 tensor.
    #[inline]
    pub fn rows(&self) -> usize {
        assert_eq!(self.ndim(), 2, "rows() needs a rank-2 tensor, got {:?}", self.shape);
        self.shape[0]
    }

    /// Columns of a rank-2 tensor.
    #[inline]
    pub fn cols(&self) -> usize {
        assert_eq!(self.ndim(), 2, "cols() needs a rank-2 tensor, got {:?}", self.shape);
        self.shape[1]
    }

    /// Row `r` of a rank-2 tensor as a contiguous slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        let c = self.cols();
        &self.data[r * c..(r + 1) * c]
    }

    /// Mutable row `r` of a rank-2 tensor.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        let c = self.cols();
        &mut self.data[r * c..(r + 1) * c]
    }

    /// Matrix element `(r, c)` of a rank-2 tensor.
    #[inline]
    pub fn m(&self, r: usize, c: usize) -> f64 {
        debug_assert_eq!(self.ndim(), 2);
        self.data[r * self.shape[1] + c]
    }

    /// Sets matrix element `(r, c)` of a rank-2 tensor.
    #[inline]
    pub fn set_m(&mut self, r: usize, c: usize, v: f64) {
        debug_assert_eq!(self.ndim(), 2);
        self.data[r * self.shape[1] + c] = v;
    }

    // ------------------------------------------------------------------
    // Elementwise arithmetic (allocating and in-place variants)
    // ------------------------------------------------------------------

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Self {
        Self { shape: self.shape.clone(), data: self.data.iter().map(|&x| f(x)).collect() }
    }

    /// Applies `f` in place.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Elementwise combination of two same-shaped tensors.
    ///
    /// # Panics
    /// Panics on shape mismatch.
    pub fn zip_map(&self, other: &Self, f: impl Fn(f64, f64) -> f64) -> Self {
        assert_eq!(self.shape, other.shape, "zip_map shape mismatch");
        let data = self.data.iter().zip(&other.data).map(|(&a, &b)| f(a, b)).collect();
        Self { shape: self.shape.clone(), data }
    }

    /// `self += other` elementwise (fused kernel).
    pub fn add_assign(&mut self, other: &Self) {
        assert_eq!(self.shape, other.shape, "add_assign shape mismatch");
        mvi_kernels::add_assign(&mut self.data, &other.data);
    }

    /// `self += alpha * other` elementwise (fused axpy kernel).
    pub fn axpy(&mut self, alpha: f64, other: &Self) {
        assert_eq!(self.shape, other.shape, "axpy shape mismatch");
        mvi_kernels::axpy(&mut self.data, alpha, &other.data);
    }

    /// `self *= c` elementwise.
    pub fn scale_inplace(&mut self, c: f64) {
        mvi_kernels::scale(&mut self.data, c);
    }

    // ------------------------------------------------------------------
    // Reductions
    // ------------------------------------------------------------------

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Arithmetic mean of all elements (0 for empty tensors).
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Frobenius norm (Euclidean norm of the flattened tensor).
    pub fn frobenius_norm(&self) -> f64 {
        mvi_kernels::norm2_sq(&self.data).sqrt()
    }

    /// Largest absolute element (0 for empty tensors).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0f64, |m, &x| m.max(x.abs()))
    }

    /// True when every element is finite (no NaN / ±inf).
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn construction_and_indexing() {
        let t = Tensor::from_fn(&[2, 3], |idx| (idx[0] * 10 + idx[1]) as f64);
        assert_eq!(t.get(&[0, 0]), 0.0);
        assert_eq!(t.get(&[1, 2]), 12.0);
        assert_eq!(t.m(1, 1), 11.0);
        assert_eq!(t.row(1), &[10.0, 11.0, 12.0]);
    }

    #[test]
    fn series_layout_is_contiguous() {
        // Shape (2 stores, 3 items, 4 time steps): series 4 = store 1, item 1.
        let t = Tensor::from_fn(&[2, 3, 4], |idx| (idx[0] * 100 + idx[1] * 10 + idx[2]) as f64);
        assert_eq!(t.n_series(), 6);
        assert_eq!(t.t_len(), 4);
        assert_eq!(t.series(4), &[110.0, 111.0, 112.0, 113.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0]).reshape(&[2, 2]);
        assert_eq!(t.m(1, 0), 3.0);
    }

    #[test]
    #[should_panic(expected = "changes volume")]
    fn reshape_volume_checked() {
        let _ = Tensor::zeros(&[4]).reshape(&[3]);
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_slice(&[3.0, -4.0]);
        assert_eq!(t.sum(), -1.0);
        assert_eq!(t.mean(), -0.5);
        assert!((t.frobenius_norm() - 5.0).abs() < 1e-12);
        assert_eq!(t.max_abs(), 4.0);
        assert!(t.all_finite());
        assert!(!Tensor::from_slice(&[f64::NAN]).all_finite());
    }

    #[test]
    fn axpy_and_scale() {
        let mut a = Tensor::from_slice(&[1.0, 2.0]);
        let b = Tensor::from_slice(&[10.0, 20.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.data(), &[6.0, 12.0]);
        a.scale_inplace(2.0);
        assert_eq!(a.data(), &[12.0, 24.0]);
    }

    #[test]
    fn extend_time_preserves_series_and_fills_suffix() {
        // Shape (2, 3, 4): two non-time axes, so series shift non-trivially.
        let t = Tensor::from_fn(&[2, 3, 4], |idx| (idx[0] * 100 + idx[1] * 10 + idx[2]) as f64);
        let mut grown = t.clone();
        grown.extend_time(7, -1.0);
        assert_eq!(grown.shape(), &[2, 3, 7]);
        for s in 0..6 {
            assert_eq!(&grown.series(s)[..4], t.series(s), "series {s} prefix changed");
            assert!(grown.series(s)[4..].iter().all(|&v| v == -1.0), "series {s} suffix not fill");
        }
        // Truncating back recovers the original exactly.
        assert_eq!(grown.truncated_time(4), t);
        // Growing to the same length is a no-op.
        let mut same = t.clone();
        same.extend_time(4, 9.0);
        assert_eq!(same, t);
    }

    #[test]
    #[should_panic(expected = "shrink the time axis")]
    fn extend_time_rejects_shrinking() {
        Tensor::zeros(&[2, 5]).extend_time(3, 0.0);
    }

    #[test]
    fn retain_latest_keeps_the_newest_suffix_of_every_series() {
        let t = Tensor::from_fn(&[2, 3, 5], |idx| (idx[0] * 100 + idx[1] * 10 + idx[2]) as f64);
        let mut ring = t.clone();
        ring.retain_latest(2);
        assert_eq!(ring.shape(), &[2, 3, 2]);
        for s in 0..6 {
            assert_eq!(ring.series(s), &t.series(s)[3..], "series {s} suffix mismatch");
        }
        // Keeping everything is a no-op; keeping zero steps empties the axis.
        let mut same = t.clone();
        same.retain_latest(5);
        assert_eq!(same, t);
        let mut none = t.clone();
        none.retain_latest(0);
        assert_eq!(none.shape(), &[2, 3, 0]);
        assert!(none.is_empty());
        // Growing back re-opens a fill-initialized suffix without realloc.
        none.extend_time(5, 7.0);
        assert!(none.data().iter().all(|&v| v == 7.0));
    }

    #[test]
    #[should_panic(expected = "grow the time axis")]
    fn retain_latest_rejects_growing() {
        Tensor::zeros(&[2, 5]).retain_latest(6);
    }

    proptest! {
        #[test]
        fn prop_retain_latest_matches_suffix_copy(
            n in 1usize..5, t_len in 1usize..12, keep_frac in 0usize..13
        ) {
            let keep = keep_frac.min(t_len);
            let t = Tensor::from_fn(&[n, t_len], |idx| (idx[0] * 1000 + idx[1]) as f64);
            let mut ring = t.clone();
            ring.retain_latest(keep);
            prop_assert_eq!(ring.t_len(), keep);
            for s in 0..n {
                prop_assert_eq!(ring.series(s), &t.series(s)[t_len - keep..]);
            }
        }
    }

    #[test]
    #[should_panic(expected = "grow the time axis")]
    fn truncated_time_rejects_growing() {
        let _ = Tensor::zeros(&[2, 5]).truncated_time(6);
    }

    proptest! {
        #[test]
        fn prop_extend_then_truncate_roundtrips(
            n in 1usize..5, t_len in 1usize..12, extra in 0usize..9
        ) {
            let t = Tensor::from_fn(&[n, t_len], |idx| (idx[0] * 1000 + idx[1]) as f64);
            let mut grown = t.clone();
            grown.extend_time(t_len + extra, 0.5);
            prop_assert_eq!(grown.t_len(), t_len + extra);
            prop_assert_eq!(grown.truncated_time(t_len), t);
        }
    }

    proptest! {
        #[test]
        fn prop_flat_and_multi_index_agree(
            d0 in 1usize..5, d1 in 1usize..5, d2 in 1usize..5, seed in 0u64..1000
        ) {
            let shape = [d0, d1, d2];
            let t = Tensor::from_fn(&shape, |idx| {
                (idx[0] as f64) + 7.0 * idx[1] as f64 + 31.0 * idx[2] as f64 + seed as f64
            });
            for (flat, idx) in crate::shape::indices(&shape).enumerate() {
                prop_assert_eq!(t.at(flat), t.get(&idx));
            }
        }

        #[test]
        fn prop_zip_map_add_commutes(v in proptest::collection::vec(-1e6f64..1e6, 1..64)) {
            let a = Tensor::from_slice(&v);
            let b = a.map(|x| x * 2.0);
            let ab = a.zip_map(&b, |x, y| x + y);
            let ba = b.zip_map(&a, |x, y| x + y);
            prop_assert_eq!(ab, ba);
        }

        #[test]
        fn prop_series_roundtrip(n in 1usize..6, t_len in 1usize..20) {
            let t = Tensor::from_fn(&[n, t_len], |idx| (idx[0] * t_len + idx[1]) as f64);
            for s in 0..n {
                let series = t.series(s);
                prop_assert_eq!(series.len(), t_len);
                for (j, &v) in series.iter().enumerate() {
                    prop_assert_eq!(v, (s * t_len + j) as f64);
                }
            }
        }
    }
}
