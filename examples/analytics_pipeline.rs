//! Downstream analytics (§5.7): does imputing beat just dropping missing cells
//! when an analyst reads dimension-averaged aggregates?
//!
//! ```sh
//! cargo run --release --example analytics_pipeline
//! ```
//!
//! Computes the store-averaged demand series of a (store × SKU × week) tensor
//! three ways — from ground truth, from DropCell (missing cells excluded from the
//! average), and from each method's imputation — and reports how far each
//! aggregate strays from the truth (Fig 11's measurement).

use deepmvi::{DeepMvi, DeepMviConfig};
use mvi_baselines::CdRec;
use mvi_data::generators::{generate_with_shape, DatasetName};
use mvi_data::imputer::{Imputer, MeanImputer};
use mvi_data::scenarios::Scenario;
use mvi_eval::analytics::{aggregate_comparison, evaluate_analytics};

fn main() {
    let dataset = generate_with_shape(DatasetName::JanataHack, &[10, 6], 134, 33);
    let instance = Scenario::mcar(1.0).apply(&dataset, 13);
    println!(
        "aggregate: demand averaged over {} stores -> {} SKU-level series",
        dataset.dims[0].len(),
        dataset.dims[1].len()
    );

    // The DropCell reference needs no method at all: drop missing cells from the
    // average. Any useful imputation must beat it (the paper's bar for practical
    // significance — several published methods fail it on this workload).
    let oracle = aggregate_comparison(&instance, &instance.truth.values);
    println!("\nDropCell aggregate MAE: {:.5}", oracle.dropcell_agg_mae);

    let methods: Vec<(&str, Box<dyn Imputer>)> = vec![
        (
            "DeepMVI",
            Box::new(DeepMvi::new(DeepMviConfig {
                max_steps: 250,
                p: 16,
                n_heads: 2,
                ctx_windows: 14,
                ..Default::default()
            })),
        ),
        ("CDRec", Box::new(CdRec::default())),
        ("MeanImpute", Box::new(MeanImputer)),
    ];
    println!("\n{:<12} {:>14} {:>22}", "method", "aggregate MAE", "gain over DropCell");
    for (name, imputer) in methods {
        let r = evaluate_analytics(imputer.as_ref(), &instance);
        println!("{:<12} {:>14.5} {:>22.5}", name, r.method_agg_mae, r.gain_over_dropcell());
    }
    println!("\nPositive gain = imputing improved the analyst-facing aggregate.");
}
