//! Forecasting with an imputation model — the paper's future-work direction
//! (§6: "applying our neural architecture to other time-series tasks including
//! forecasting").
//!
//! ```sh
//! cargo run --release --example forecasting
//! ```
//!
//! A forecast is a missing block at the *end* of every series: the final `H`
//! steps are marked missing and DeepMVI imputes them from seasonal structure and
//! correlated series. Compared against a naive last-value forecast and a
//! seasonal-naive forecast.

use deepmvi::{DeepMvi, DeepMviConfig};
use mvi_data::generators::{generate_with_shape, DatasetName};
use mvi_data::imputer::Imputer;
use mvi_data::metrics::mae;
use mvi_tensor::Mask;

fn main() {
    let horizon = 30usize;
    let dataset = generate_with_shape(DatasetName::Chlorine, &[8], 500, 77);
    let t_len = dataset.t_len();

    // Mark the last `horizon` steps of every series missing.
    let mut missing = Mask::falses(dataset.values.shape());
    for s in 0..dataset.n_series() {
        missing.set_range(s, t_len - horizon, t_len, true);
    }
    let instance = dataset.clone().with_missing(missing);
    let observed = instance.observed();
    println!("forecasting the last {horizon} steps of {} series", dataset.n_series());

    // DeepMVI as forecaster. Note this is a *harder* setting than imputation: no
    // right context exists, so only left-context windows carry signal.
    let config = DeepMviConfig { max_steps: 250, p: 16, n_heads: 2, ..Default::default() };
    let deepmvi = DeepMvi::new(config).impute(&observed);

    // Naive references.
    let mut last_value = dataset.values.clone();
    let mut seasonal_naive = dataset.values.clone();
    let season = 95; // close to the generator's cluster periods
    for s in 0..dataset.n_series() {
        let series = last_value.series_mut(s);
        let anchor = series[t_len - horizon - 1];
        for v in &mut series[t_len - horizon..] {
            *v = anchor;
        }
        let series = seasonal_naive.series_mut(s);
        for t in t_len - horizon..t_len {
            series[t] = series[t - season];
        }
    }

    println!("\n{:<16} {:>8}", "forecaster", "MAE");
    for (name, pred) in
        [("DeepMVI", &deepmvi), ("seasonal-naive", &seasonal_naive), ("last-value", &last_value)]
    {
        println!("{:<16} {:>8.4}", name, mae(&dataset.values, pred, &instance.missing));
    }
    println!("\nDeepMVI should land near the seasonal-naive oracle and far below last-value.");
}
