//! The network front door: serve a trained engine over framed TCP on
//! loopback, then drill the failure paths the wire protocol types —
//! an overload shed that a retrying client rides out, and a graceful
//! drain that answers every accepted request before the sockets close.
//!
//! ```sh
//! cargo run --release --example net_serving
//! ```
//!
//! `examples/online_serving.rs` tours the in-process serving stack;
//! this example puts the same engine behind `mvi_net::NetServer` — a
//! thread-per-connection framed-TCP server over `std::net` (no async
//! runtime) with CRC-checked frames, admission control, per-request
//! deadlines and typed wire error codes. See ARCHITECTURE.md
//! "Network front door & failure domains" for the protocol.

use deepmvi::{DeepMviConfig, DeepMviModel};
use mvi_data::generators::{generate_with_shape, DatasetName};
use mvi_data::scenarios::Scenario;
use mvi_net::{ClientConfig, ErrorCode, NetClient, NetError, NetServer, RetryPolicy, ServerConfig};
use mvi_serve::{BatcherConfig, ImputationEngine, ServeSnapshot};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const SERIES: usize = 4;
const T: usize = 200;

fn main() {
    // ---- Offline: train once, ship one JSON snapshot. ----
    let dataset = generate_with_shape(DatasetName::Electricity, &[SERIES], T, 11);
    let observed = Scenario::mcar(0.9).apply(&dataset, 3).observed();
    let config = DeepMviConfig { max_steps: 40, p: 8, n_heads: 2, ..Default::default() };
    let mut model = DeepMviModel::new(&config, &observed);
    model.fit(&observed);
    let snapshot_json = ServeSnapshot::capture(&model, &observed).to_json();
    println!(
        "trained {} parameters; snapshot {} bytes",
        model.num_parameters(),
        snapshot_json.len()
    );

    let engine = |warm: bool| -> Arc<ImputationEngine> {
        let snap = ServeSnapshot::from_json(&snapshot_json).expect("snapshot parses");
        let frozen = snap.restore(&observed).expect("geometry-checked restore");
        let eng = Arc::new(ImputationEngine::new(frozen, observed.clone()).expect("engine"));
        if warm {
            eng.warm_up();
        }
        eng
    };

    // ---- Serve: the same engine, now behind a socket. ----
    let eng = engine(true);
    let server = NetServer::bind("127.0.0.1:0", Arc::clone(&eng), ServerConfig::default())
        .expect("bind loopback");
    let addr = server.local_addr();
    println!("\nserving on {addr} (admission cap 64 connections, 2 s request deadline)");

    let start = Instant::now();
    let mut handles = Vec::new();
    for worker in 0..4u32 {
        handles.push(std::thread::spawn(move || {
            // One connection per client thread; frames are CRC-checked
            // both ways and every failure would arrive as a typed code.
            let mut client = NetClient::new(addr, ClientConfig::default());
            for i in 0..25u32 {
                let s = (worker + i) % SERIES as u32;
                let lo = (i * 7) % (T as u32 - 40);
                let values = client.query(s, lo, lo + 40).expect("wire query");
                assert_eq!(values.len(), 40);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let elapsed = start.elapsed().as_secs_f64();
    let stats = server.stats();
    println!(
        "served {} requests over {} connections in {:.1} ms ({:.0} req/s on loopback)",
        stats.requests,
        stats.accepted,
        elapsed * 1e3,
        stats.requests as f64 / elapsed
    );

    // Wire answers are bitwise identical to in-process ones: the frame
    // codec round-trips every f64 exactly.
    let mut client = NetClient::new(addr, ClientConfig::default());
    let over_wire = client.query(0, 10, 50).expect("wire query");
    let direct = eng.query(0, 10, 50).expect("direct query");
    assert!(over_wire.iter().zip(&direct).all(|(a, b)| a.to_bits() == b.to_bits()));
    println!("wire values are bitwise identical to the in-process engine");

    // A bad request is the *request's* fault: typed Invalid, and the
    // connection keeps serving.
    match client.query(99, 0, 10) {
        Err(NetError::Server(e)) => {
            assert_eq!(e.code, ErrorCode::Invalid);
            println!("bad series id answered typed: [{:?}] {}", e.code, e.message);
        }
        other => panic!("expected a typed Invalid reply, got {other:?}"),
    }
    client.query(0, 0, 10).expect("same connection still serves");

    // Health crosses the wire too: the engine's fault counters plus the
    // front door's own state.
    let health = client.health().expect("health frame");
    println!(
        "health over the wire: {} active connections, queue {}/{}, {} panics caught, draining: {}",
        health.active_connections,
        health.queue_depth,
        health.queue_cap,
        health.panics_caught,
        health.draining
    );
    drop(client);
    server.shutdown();

    // ---- Drill 1: overload sheds typed; a retrying client rides it out. ----
    // A tiny queue behind a stalled evaluation: floods must shed with the
    // typed Overloaded code (the one code that guarantees the request was
    // never executed), not buffer without bound.
    println!("\noverload drill: queue cap 2 behind a stalled evaluation, 6-client flood");
    let eng = engine(false); // cold: queries actually evaluate (and stall)
    let release = Arc::new(AtomicBool::new(false));
    let gate = Arc::clone(&release);
    eng.set_eval_hook(Some(Box::new(move |_results| {
        while !gate.load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_millis(2));
        }
    })));
    let config = ServerConfig {
        batcher: BatcherConfig {
            max_batch: 1,
            queue_cap: 2,
            deadline: Some(Duration::from_secs(30)),
        },
        ..ServerConfig::default()
    };
    let server = NetServer::bind("127.0.0.1:0", Arc::clone(&eng), config).expect("bind");
    let addr = server.local_addr();

    let one_shot = ClientConfig { retry: RetryPolicy::none(), ..ClientConfig::default() };
    let stalled = std::thread::spawn(move || NetClient::new(addr, one_shot).query(0, 0, 40));
    while eng.stats().batches < 1 {
        std::thread::sleep(Duration::from_millis(5)); // let it occupy the worker
    }
    let flood: Vec<_> = (0..6u32)
        .map(|i| std::thread::spawn(move || NetClient::new(addr, one_shot).query(i % 4, 40, 80)))
        .collect();
    // A patient client retries on the server's hint; its first attempts land
    // in the flood and shed. Backoff is seeded and jittered: the schedule is
    // deterministic, the herd is de-synchronized.
    let patient_cfg = ClientConfig {
        retry: RetryPolicy {
            max_attempts: 40,
            base: Duration::from_millis(20),
            ..Default::default()
        },
        ..ClientConfig::default()
    };
    let patient = std::thread::spawn(move || NetClient::new(addr, patient_cfg).query(1, 0, 40));

    std::thread::sleep(Duration::from_millis(300));
    release.store(true, Ordering::Release); // the stall heals

    let mut shed = 0;
    for h in flood {
        match h.join().unwrap() {
            Ok(values) => assert_eq!(values.len(), 40), // squeezed into the queue
            Err(e) => {
                let NetError::Server(e) = e else { panic!("flood error must be typed: {e}") };
                assert_eq!(e.code, ErrorCode::Overloaded);
                assert!(e.retry_after_ms > 0, "sheds carry a backoff hint");
                shed += 1;
            }
        }
    }
    println!("{shed}/6 flood requests shed typed (Overloaded + retry_after hint)");
    assert!(shed >= 1, "a 6-client flood against a 2-slot queue must shed");
    stalled.join().unwrap().expect("the stalled request still got real values");
    let values = patient.join().unwrap().expect("retrying client");
    println!("retrying client succeeded through the flood ({} values)", values.len());
    server.shutdown();

    // ---- Drill 2: graceful drain — zero lost replies. ----
    // Six clients in flight against a stalled evaluator, then shutdown():
    // the in-flight batch finishes with real values, everything queued is
    // answered with the typed Shutdown code, and only then do sockets close.
    println!("\ndrain drill: 6 in-flight clients, then a graceful shutdown");
    let eng = engine(false);
    release.store(false, Ordering::Release);
    let gate = Arc::clone(&release);
    eng.set_eval_hook(Some(Box::new(move |_results| {
        while !gate.load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_millis(2));
        }
    })));
    // max_batch 1: the stalled worker holds exactly one request in flight,
    // so the drain has a real queue to answer with the typed Shutdown code.
    let config = ServerConfig {
        batcher: BatcherConfig {
            max_batch: 1,
            queue_cap: 64,
            deadline: Some(Duration::from_secs(30)),
        },
        ..ServerConfig::default()
    };
    let server = NetServer::bind("127.0.0.1:0", Arc::clone(&eng), config).expect("bind");
    let addr = server.local_addr();
    let clients: Vec<_> = (0..6u32)
        .map(|i| {
            std::thread::spawn(move || {
                NetClient::new(addr, one_shot).query(i % 4, (i * 13) % 120, (i * 13) % 120 + 40)
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(150)); // all six in flight
    let healer = Arc::clone(&release);
    std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(150));
        healer.store(true, Ordering::Release);
    });
    server.shutdown(); // blocks until every accepted request is answered

    let (mut answered, mut drained) = (0, 0);
    for h in clients {
        match h.join().unwrap() {
            Ok(values) => {
                assert_eq!(values.len(), 40);
                answered += 1;
            }
            Err(NetError::Server(e)) if e.code == ErrorCode::Shutdown => drained += 1,
            Err(other) => panic!("lost reply: transport-level {other}"),
        }
    }
    println!(
        "{answered} answered with real values + {drained} typed Shutdown = {} accepted, 0 lost",
        answered + drained
    );
    assert_eq!(answered + drained, 6, "the drain contract: every accepted request gets a reply");
}
