//! Online serving: train once, snapshot, then serve queries and a live stream
//! with bounded memory and a warm restart.
//!
//! ```sh
//! cargo run --release --example online_serving
//! ```
//!
//! The batch pipeline retrains per `impute` call; a production deployment
//! trains offline, ships a snapshot, and serves many cheap requests against a
//! warm model. This example walks the full loop: train → `ServeSnapshot` JSON →
//! `ImputationEngine` → concurrent micro-batched queries → streaming `append`s
//! that re-impute only the affected tail windows → a stream that runs past
//! the **retention ring** (the oldest span evicts, resident storage stays
//! flat, evicted time answers with a typed error) → a **warm restart** from a
//! v3 cache snapshot that serves without recomputing a single window.

use deepmvi::{DeepMviConfig, DeepMviModel};
use mvi_data::dataset::Dataset;
use mvi_data::generators::{generate_with_shape, DatasetName};
use mvi_data::metrics::mae;
use mvi_data::scenarios::Scenario;
use mvi_serve::{ImputationEngine, MicroBatcher, ServeError, ServeSnapshot};
use std::sync::Arc;
use std::time::Instant;

const SERIES: usize = 6;
const T: usize = 400;
const STREAM_START: usize = 320;
/// The live stream keeps running past the trained length — the engine grows.
const T_STREAM: usize = 480;
/// Retention window of the bounded engine in part 2: resident storage is
/// capped near this many steps per series while the stream runs forever.
const RETENTION: usize = 200;
/// How far the bounded stream runs past everything above.
const T_LONG: usize = 1600;

fn main() {
    // ---- Offline: training over history with a hidden "future" suffix. ----
    let full = generate_with_shape(DatasetName::Electricity, &[SERIES], T_LONG, 21);
    let dataset =
        Dataset::new("electricity-trained", full.dims.clone(), full.values.truncated_time(T));
    let instance = Scenario::mcar(1.0).apply(&dataset, 13);
    let mut observed = instance.observed();
    for s in 0..SERIES {
        observed.hide_range(s, STREAM_START, T);
    }
    let config = DeepMviConfig { max_steps: 150, p: 16, n_heads: 2, ..Default::default() };
    let mut model = DeepMviModel::new(&config, &observed);
    let report = model.fit(&observed);
    println!(
        "trained {} parameters in {} steps (val MSE {:.4})",
        model.num_parameters(),
        report.steps,
        report.best_val
    );

    // ---- Ship: one JSON artifact carries config + geometry + weights. ----
    let json = ServeSnapshot::capture(&model, &observed).to_json();
    println!("snapshot: {} bytes of JSON", json.len());

    // ---- Online: rehydrate into an engine behind a micro-batcher. ----
    let snapshot = ServeSnapshot::from_json(&json).expect("parse snapshot");
    let frozen = snapshot.restore(&observed).expect("geometry-checked restore");
    let engine = Arc::new(ImputationEngine::new(frozen, observed).expect("engine"));
    let warmed = engine.warm_up();
    println!("warm cache: {warmed} windows imputed up front");

    // Concurrent clients: each thread issues point-range queries; the batcher
    // coalesces whatever is pending into deduplicated window batches.
    let batcher = MicroBatcher::spawn(Arc::clone(&engine), 32);
    let start = Instant::now();
    let mut handles = Vec::new();
    for worker in 0..4 {
        let client = batcher.client();
        handles.push(std::thread::spawn(move || {
            for i in 0..50 {
                let s = (worker + i) % SERIES;
                let lo = (i * 7) % (T - 60);
                client.query(s, lo, lo + 60).expect("query");
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let elapsed = start.elapsed().as_secs_f64();
    let stats = engine.stats();
    println!(
        "served {} requests in {} batches ({:.0} req/s; {} window passes, {} cache hits)",
        stats.requests,
        stats.batches,
        stats.requests as f64 / elapsed,
        stats.windows_computed,
        stats.window_hits
    );

    // ---- Stream: the hidden future arrives; only tail windows recompute. ----
    let mut refreshed = 0usize;
    for s in 0..SERIES {
        let wm = engine.watermark(s).expect("watermark");
        let arriving = &dataset.values.series(s)[wm..T];
        let report = engine.append(s, arriving).expect("append");
        refreshed += report.windows_recomputed;
        println!(
            "append series {s}: {} values at t={wm}, {} tail windows recomputed, {} invalidated",
            arriving.len(),
            report.windows_recomputed,
            report.windows_invalidated
        );
    }
    println!("streaming drain recomputed {refreshed} windows (full tensor would be far more)");

    // ---- Grow: the stream keeps running past the trained length. ----
    // Appends past `t_len` used to hard-fail with a capacity error; the
    // engine now grows the live grid and serves the grown tail through the
    // frozen model's rolling temporal context.
    for s in 0..SERIES {
        let wm = engine.watermark(s).expect("watermark");
        let report =
            engine.append(s, &full.values.series(s)[wm..T_STREAM]).expect("append past capacity");
        println!(
            "append series {s}: grew to {} (trained length {}), {} windows recomputed",
            report.live_len,
            engine.trained_len(),
            report.windows_recomputed
        );
    }
    let tail = engine.query(0, T, T_STREAM).expect("query over the grown region");
    println!("grown tail of series 0 serves {} values past the trained length", tail.len());

    // The served values on the original missing entries stay faithful.
    let served = engine.cached_values().truncated_time(T);
    let err = mae(&dataset.values, &served, &instance.missing);
    println!("MAE on the original hidden entries after streaming: {err:.4}");

    // ---- Bound memory: the same model behind a retention ring. ----
    // The unbounded engine above grows storage forever; a deployment fed
    // real traffic wants the newest RETENTION steps resident and the rest
    // evicted. Build a bounded engine from the same snapshot and stream far
    // past the cap: storage stays flat while logical time keeps advancing.
    let frozen = ServeSnapshot::from_json(&json).expect("parse snapshot");
    let observed = engine.observed().truncated(T); // the trained-era history
    let ring = ImputationEngine::with_retention(
        frozen.restore(&observed).expect("restore"),
        observed,
        RETENTION,
    )
    .expect("bounded engine");
    let cap = ring.ring_capacity().expect("bounded");
    let chunk = 25;
    loop {
        let mut all_done = true;
        for s in 0..SERIES {
            let wm = ring.watermark(s).expect("watermark");
            if wm >= T_LONG {
                continue;
            }
            all_done = false;
            let end = (wm + chunk).min(T_LONG);
            ring.append(s, &full.values.series(s)[wm..end]).expect("append");
            assert!(ring.storage_capacity() <= cap, "resident storage must stay within the cap");
        }
        if all_done {
            break;
        }
    }
    let (start, live) = (ring.retained_start(), ring.live_len());
    let stats = ring.stats();
    println!(
        "retention ring: streamed to t={live} with storage capped at {cap} steps/series \
         ({} evictions, {} steps evicted); retained window starts at {start}",
        stats.evictions, stats.steps_evicted
    );
    // Recent history serves; evicted time is a typed error, not wrong data.
    ring.query(0, start, live).expect("retained query");
    match ring.query(0, 0, 60) {
        Err(ServeError::Evicted { retained_start, .. }) => {
            println!("query before t={retained_start} correctly fails: evicted");
        }
        other => panic!("expected an eviction error, got {other:?}"),
    }

    // ---- Warm restart: persist the cache, restore, serve with no compute. ----
    for s in 0..SERIES {
        ring.query(s, start, live).expect("healing sweep"); // make every window cache-fresh
    }
    let warm_json = ring.snapshot().to_json();
    println!("warm snapshot: {} bytes of JSON (weights + serving cache)", warm_json.len());
    let restarted =
        ImputationEngine::from_snapshot(&ServeSnapshot::from_json(&warm_json).expect("parse"))
            .expect("warm restart");
    for s in 0..SERIES {
        restarted.query(s, start, live).expect("restored query");
    }
    assert_eq!(
        restarted.stats().windows_computed,
        0,
        "a warm restart serves the cached windows without a single forward pass"
    );
    println!(
        "warm restart: {} queries answered with {} window evaluations",
        restarted.stats().requests,
        restarted.stats().windows_computed
    );
}
