//! Quickstart: impute missing values in a small multidimensional sales dataset.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a 4-store × 6-product × 200-week demand tensor, hides 10% of it in MCAR
//! blocks, imputes with DeepMVI, and compares the error against simple references.

use deepmvi::{DeepMvi, DeepMviConfig};
use mvi_data::dataset::{Dataset, DimSpec};
use mvi_data::imputer::{Imputer, LinearInterpImputer, MeanImputer};
use mvi_data::metrics::{mae, rmse};
use mvi_data::scenarios::Scenario;
use mvi_tensor::Tensor;

fn main() {
    // 1. A multidimensional dataset: (store, product, week) demand with seasonal
    //    patterns shared across stores (the structure DeepMVI's kernel regression
    //    exploits).
    let (stores, products, weeks) = (4usize, 6usize, 200usize);
    let values = Tensor::from_fn(&[stores, products, weeks], |idx| {
        let (s, p, t) = (idx[0], idx[1], idx[2]);
        let seasonal = (std::f64::consts::TAU * t as f64 / 26.0 + p as f64).sin();
        let store_gain = 0.7 + 0.15 * s as f64;
        let trend = 0.002 * t as f64 * (p % 3) as f64;
        store_gain * seasonal + trend
    });
    let dims = vec![
        DimSpec::indexed("store", "store", stores),
        DimSpec::indexed("product", "sku", products),
    ];
    let dataset = Dataset::new("retail-demo", dims, values);
    println!(
        "dataset: {} series of length {} ({} entries)",
        dataset.n_series(),
        dataset.t_len(),
        dataset.values.len()
    );

    // 2. Hide 10% of every series in MCAR blocks of 10.
    let instance = Scenario::mcar(1.0).apply(&dataset, 42);
    println!(
        "hidden: {} entries ({:.1}%)",
        instance.missing.count(),
        100.0 * instance.missing_fraction()
    );
    let observed = instance.observed();

    // 3. Impute with DeepMVI (a small training budget keeps this example fast).
    let config =
        DeepMviConfig { max_steps: 120, p: 16, n_heads: 2, ctx_windows: 20, ..Default::default() };
    let deepmvi = DeepMvi::new(config);
    let imputed = deepmvi.impute(&observed);

    // 4. Score against the ground truth on the hidden entries only.
    println!("\n{:<14} {:>8} {:>8}", "method", "MAE", "RMSE");
    for (name, result) in [
        ("DeepMVI", imputed),
        ("LinearInterp", LinearInterpImputer.impute(&observed)),
        ("MeanImpute", MeanImputer.impute(&observed)),
    ] {
        println!(
            "{:<14} {:>8.4} {:>8.4}",
            name,
            mae(&dataset.values, &result, &instance.missing),
            rmse(&dataset.values, &result, &instance.missing)
        );
    }
}
