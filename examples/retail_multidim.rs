//! Multidimensional imputation on a retail (store × SKU × week) tensor — the
//! JanataHack workload of §5.5.4 / Fig 9.
//!
//! ```sh
//! cargo run --release --example retail_multidim
//! ```
//!
//! Shows why the per-dimension kernel regression matters: the same SKU across
//! stores is highly correlated, so DeepMVI's sibling structure finds the signal,
//! while flattening the index (DeepMVI1D) or using a matrix method (CDRec) mixes
//! unrelated series and picks up spurious correlations.

use deepmvi::{DeepMvi, DeepMviConfig, KernelMode};
use mvi_baselines::CdRec;
use mvi_data::generators::{generate_with_shape, DatasetName};
use mvi_data::imputer::Imputer;
use mvi_data::metrics::mae;
use mvi_data::scenarios::Scenario;

fn main() {
    // 12 stores × 8 SKUs × 134 weeks of demand.
    let dataset = generate_with_shape(DatasetName::JanataHack, &[12, 8], 134, 21);
    println!(
        "dataset: {} stores x {} SKUs x {} weeks",
        dataset.dims[0].len(),
        dataset.dims[1].len(),
        dataset.t_len()
    );
    let instance = Scenario::mcar(1.0).apply(&dataset, 9);
    let observed = instance.observed();

    let base =
        DeepMviConfig { max_steps: 250, p: 16, n_heads: 2, ctx_windows: 14, ..Default::default() };
    let methods: Vec<(&str, Box<dyn Imputer>)> = vec![
        ("DeepMVI (multidim KR)", Box::new(DeepMvi::new(base.clone()))),
        (
            "DeepMVI1D (flattened)",
            Box::new(DeepMvi::new(DeepMviConfig {
                kernel_mode: KernelMode::Flattened,
                ..base.clone()
            })),
        ),
        (
            "DeepMVI (no KR)",
            Box::new(DeepMvi::new(DeepMviConfig { kernel_mode: KernelMode::Off, ..base })),
        ),
        ("CDRec", Box::new(CdRec::default())),
    ];

    println!("\n{:<24} {:>8}", "method", "MAE");
    for (name, imputer) in methods {
        let imputed = imputer.impute(&observed);
        let err = mae(&dataset.values, &imputed, &instance.missing);
        println!("{name:<24} {err:>8.4}");
    }
    println!(
        "\nExpected shape (Fig 9): multidim KR < flattened < no KR, and DeepMVI \
         beating the matrix baseline on this high-relatedness tensor."
    );
}
