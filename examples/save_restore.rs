//! Train once, impute forever: persisting a trained DeepMVI model.
//!
//! ```sh
//! cargo run --release --example save_restore
//! ```
//!
//! Decision-support platforms re-impute as new data arrives; retraining per query
//! wastes the training budget. This example trains a model, serializes its weights
//! to JSON, restores them into a freshly-built model, and verifies the restored
//! model produces byte-identical imputations — then reuses it on a *new* missing
//! pattern over the same data.

use deepmvi::{DeepMviConfig, DeepMviModel};
use mvi_data::generators::{generate_with_shape, DatasetName};
use mvi_data::metrics::mae;
use mvi_data::scenarios::Scenario;

fn main() {
    let dataset = generate_with_shape(DatasetName::Electricity, &[8], 600, 3);
    let instance = Scenario::mcar(1.0).apply(&dataset, 11);
    let observed = instance.observed();

    // Train.
    let config = DeepMviConfig { max_steps: 200, p: 16, n_heads: 2, ..Default::default() };
    let mut model = DeepMviModel::new(&config, &observed);
    let report = model.fit(&observed);
    println!(
        "trained {} parameters in {} steps (val MSE {:.4}, shared std {:.3})",
        model.num_parameters(),
        report.steps,
        report.best_val,
        model.shared_std().unwrap_or(f64::NAN),
    );
    let imputed = model.impute(&observed);
    println!("MAE on hidden entries: {:.4}", mae(&dataset.values, &imputed, &instance.missing));

    // Persist to JSON (any serde format works).
    let snapshot = model.export_params();
    let json = serde_json::to_string(&snapshot).expect("serialize");
    println!("serialized weights: {} bytes of JSON", json.len());

    // Restore into a freshly-built model with the same configuration.
    let restored_snap = serde_json::from_str(&json).expect("deserialize");
    let mut restored = DeepMviModel::new(&config, &observed);
    restored.import_params(&restored_snap).expect("import");
    let reimputed = restored.impute(&observed);
    let max_diff = reimputed
        .data()
        .iter()
        .zip(imputed.data())
        .map(|(&a, &b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(max_diff < 1e-9, "restored model diverged: max diff {max_diff}");
    println!("restored model reproduces the imputation (max |diff| = {max_diff:.2e})");

    // Reuse on a new missing pattern (no retraining).
    let new_instance = Scenario::Blackout { block_len: 40 }.apply(&dataset, 99);
    let new_observed = new_instance.observed();
    let new_imputed = restored.impute(&new_observed);
    println!(
        "reused on a Blackout pattern without retraining: MAE {:.4}",
        mae(&dataset.values, &new_imputed, &new_instance.missing)
    );
}
