//! Blackout recovery: every sensor goes dark over the same time range — the
//! scenario where cross-series methods have nothing to copy from and only
//! within-series pattern matching works (§5.3, Fig 4 bottom row).
//!
//! ```sh
//! cargo run --release --example sensor_blackout
//! ```
//!
//! Compares DeepMVI against CDRec (which the paper shows degrading to linear
//! interpolation under blackout) and prints the recovered segment.

use deepmvi::{DeepMvi, DeepMviConfig};
use mvi_baselines::CdRec;
use mvi_data::generators::{generate_with_shape, DatasetName};
use mvi_data::imputer::{Imputer, LinearInterpImputer};
use mvi_data::metrics::mae;
use mvi_data::scenarios::Scenario;

fn main() {
    // Seasonal sensor fleet: 8 chlorine-like series, 600 steps.
    let dataset = generate_with_shape(DatasetName::Chlorine, &[8], 600, 11);
    let instance = Scenario::Blackout { block_len: 60 }.apply(&dataset, 4);
    let observed = instance.observed();
    let (start, len) = instance.missing.runs(0)[0];
    println!("blackout: all {} series missing t = {}..{}", dataset.n_series(), start, start + len);

    let deepmvi_cfg = DeepMviConfig { max_steps: 200, p: 16, n_heads: 2, ..Default::default() };
    let methods: Vec<(&str, Box<dyn Imputer>)> = vec![
        ("DeepMVI", Box::new(DeepMvi::new(deepmvi_cfg))),
        ("CDRec", Box::new(CdRec::default())),
        ("LinearInterp", Box::new(LinearInterpImputer)),
    ];

    let mut recovered = Vec::new();
    println!("\n{:<14} {:>8}", "method", "MAE");
    for (name, imputer) in &methods {
        let imputed = imputer.impute(&observed);
        let err = mae(&dataset.values, &imputed, &instance.missing);
        println!("{name:<14} {err:>8.4}");
        recovered.push(imputed);
    }

    // Show the middle of the recovered segment for series 0: DeepMVI should track
    // the seasonal shape while CDRec/interp draw a near-straight line (Fig 4).
    println!(
        "\nseries 0, t, truth, {}:",
        methods.iter().map(|m| m.0).collect::<Vec<_>>().join(", ")
    );
    for t in (start..start + len).step_by(6) {
        let mut line = format!("t={t:<5} truth={:>7.3}", dataset.values.series(0)[t]);
        for (i, (name, _)) in methods.iter().enumerate() {
            line.push_str(&format!("  {}={:>7.3}", name, recovered[i].series(0)[t]));
        }
        println!("{line}");
    }
}
