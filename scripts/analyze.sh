#!/usr/bin/env bash
# Run the mvi-analyze lint engine over the workspace and fail on findings.
#
# Usage:
#   scripts/analyze.sh            # human-readable report, exit 1 on findings
#   scripts/analyze.sh --json     # machine-readable report (same exit codes)
#
# Exit codes (the tool's own): 0 clean, 1 findings, 2 usage/IO error.
set -euo pipefail
cd "$(dirname "$0")/.."

exec cargo run --release -q -p mvi-analyze -- --workspace "$@"
