#!/usr/bin/env bash
# Performance-artifact harness: writes the machine-readable BENCH_<n>.json
# artifacts tracking the performance trajectory across PRs —
#   BENCH_1.json  compute-kernel throughput (two-build honest baseline),
#   BENCH_2.json  serving throughput (engine vs naive per-request impute),
#   BENCH_3.json  growth scenario (appends streaming past the trained t_len),
#   BENCH_4.json  tape-free inference (value-only evaluator vs the tape path),
#   BENCH_5.json  retention ring (bounded-memory long stream + warm restart),
#   BENCH_6.json  fault-tolerance layer (guarded-vs-unguarded serving + drill),
#   BENCH_7.json  sharded read path (warm-query scaling + blocked-time probe),
#   BENCH_8.json  network front door (loopback framed-TCP serving + drills),
#   BENCH_9.json  multi-model tenancy (registry routing, cold loads, isolation).
#
#   THREADS=4 OUT=BENCH_1.json SERVE_OUT=BENCH_2.json GROWTH_OUT=BENCH_3.json \
#       INFER_OUT=BENCH_4.json RETENTION_OUT=BENCH_5.json \
#       FAULTS_OUT=BENCH_6.json SHARDED_OUT=BENCH_7.json \
#       NET_OUT=BENCH_8.json TENANCY_OUT=BENCH_9.json scripts/bench.sh
#
# The BENCH_<n>.json schemas and the host-comparability rules are documented
# in PERFORMANCE.md ("The BENCH_<n>.json artifacts").
#
# Two builds are measured so the speedup is honest:
#   1. a baseline-codegen build (RUSTFLAGS="", i.e. plain x86-64 — exactly how
#      the seed's ikj kernel ran before this layer existed), kept in
#      target/baseline so it does not thrash the main build cache;
#   2. the repo's default native-codegen build, which runs the full harness
#      and records both the same-build speedup and the speedup against the
#      seed kernel under its own original codegen ("_shipped").
set -euo pipefail
cd "$(dirname "$0")/.."

THREADS="${THREADS:-4}"
OUT="${OUT:-BENCH_1.json}"
SERVE_OUT="${SERVE_OUT:-BENCH_2.json}"
GROWTH_OUT="${GROWTH_OUT:-BENCH_3.json}"
INFER_OUT="${INFER_OUT:-BENCH_4.json}"
RETENTION_OUT="${RETENTION_OUT:-BENCH_5.json}"
FAULTS_OUT="${FAULTS_OUT:-BENCH_6.json}"
SHARDED_OUT="${SHARDED_OUT:-BENCH_7.json}"
NET_OUT="${NET_OUT:-BENCH_8.json}"
TENANCY_OUT="${TENANCY_OUT:-BENCH_9.json}"

echo "== phase 1: baseline-codegen build (seed's original configuration) =="
RUSTFLAGS="" CARGO_TARGET_DIR=target/baseline \
    cargo build --release --offline -p mvi-bench --bin kernel_bench
./target/baseline/release/kernel_bench \
    --quick --threads="$THREADS" --out=target/baseline_bench.json

echo "== phase 2: native-codegen build (full harness) =="
cargo build --release --offline -p mvi-bench --bin kernel_bench
./target/release/kernel_bench \
    --threads="$THREADS" --baseline=target/baseline_bench.json --out="$OUT"

echo "== phase 3: serving + growth harness =="
cargo build --release --offline -p mvi-bench --bin serve_bench
./target/release/serve_bench \
    --threads="$THREADS" --out="$SERVE_OUT" --growth-out="$GROWTH_OUT"

echo "== phase 4: tape-free inference harness =="
cargo build --release --offline -p mvi-bench --bin infer_bench
./target/release/infer_bench --threads="$THREADS" --out="$INFER_OUT"

echo "== phase 5: retention ring + warm restart harness =="
./target/release/serve_bench \
    --threads="$THREADS" --only=retention --retention-out="$RETENTION_OUT"

echo "== phase 6: fault-tolerance harness (guarded serving + fault drill) =="
# Full mode asserts the guarded hot path holds >= 95% of unguarded
# throughput (the 5% acceptance bound) and that every injected fault
# surfaces as a typed error.
./target/release/serve_bench \
    --threads="$THREADS" --only=faults --faults-out="$FAULTS_OUT"

echo "== phase 7: sharded read path (warm-query scaling + blocked-time probe) =="
# Asserts (on every host) that sharded warm reads accumulate zero core-lock
# wait under mixed traffic; the >=3x scaling gate at 8 readers is asserted
# only on hosts with >= 8 cores and recorded otherwise.
./target/release/serve_bench \
    --threads="$THREADS" --only=sharded --sharded-out="$SHARDED_OUT"

echo "== phase 8: network front door (loopback framed-TCP serving + drills) =="
# Replays the serving trace through framed TCP on loopback (sustained req/s
# + p99 vs the in-process baseline) and asserts the wire-level fault drills
# in-harness: floods shed with the typed Overloaded code and a retrying
# client gets through; a graceful drain answers every accepted request with
# a reply frame — zero lost replies.
./target/release/serve_bench \
    --threads="$THREADS" --only=net --net-out="$NET_OUT"

echo "== phase 9: multi-model tenancy (registry routing + cold loads + isolation) =="
# Replays the serving trace through one front door over 1/4/16 tenants and a
# capacity-1 cold-load arm (every request pays an evict->reload), then
# asserts in-harness that a hostile tenant armed to panic its own model
# leaves a victim's replies bitwise identical with a bounded p99, and that
# unknown tenants get the typed code on a connection that stays open.
./target/release/serve_bench \
    --threads="$THREADS" --only=tenancy --tenancy-out="$TENANCY_OUT"

echo "bench artifacts: $OUT $SERVE_OUT $GROWTH_OUT $INFER_OUT $RETENTION_OUT $FAULTS_OUT $SHARDED_OUT $NET_OUT $TENANCY_OUT"
