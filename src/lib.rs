//! Umbrella crate for the DeepMVI reproduction workspace.
//!
//! Re-exports the public crates so examples and integration tests can use a single
//! dependency. See `README.md` for the architecture overview and `DESIGN.md` for the
//! per-experiment index.

pub use deepmvi;
pub use mvi_autograd as autograd;
pub use mvi_baselines as baselines;
pub use mvi_data as data;
pub use mvi_eval as eval;
pub use mvi_linalg as linalg;
pub use mvi_neural as neural;
pub use mvi_serve as serve;
pub use mvi_tensor as tensor;
