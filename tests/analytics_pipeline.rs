//! Integration tests for the §5.7 downstream-analytics claims: good imputation
//! improves dimension-averaged aggregates over DropCell; bad imputation hurts.

use deepmvi_suite::data::generators::{generate_with_shape, DatasetName};
use deepmvi_suite::data::scenarios::Scenario;
use deepmvi_suite::deepmvi::{DeepMvi, DeepMviConfig};
use deepmvi_suite::eval::analytics::{aggregate_comparison, evaluate_analytics};
use deepmvi_suite::eval::{Method, MethodBudget};

#[test]
fn oracle_imputation_always_beats_dropcell() {
    for name in [DatasetName::Climate, DatasetName::JanataHack] {
        let dims = if name.paper_shape().0.len() == 1 { vec![6] } else { vec![5, 4] };
        let ds = generate_with_shape(name, &dims, 200, 4);
        let inst = Scenario::mcar(1.0).apply(&ds, 6);
        let r = aggregate_comparison(&inst, &inst.truth.values);
        assert!(r.gain_over_dropcell() > 0.0, "{name:?}");
        assert_eq!(r.method_agg_mae, 0.0);
    }
}

#[test]
fn deepmvi_aggregate_beats_dropcell_on_correlated_multidim_data() {
    // The paper's headline analytics claim (Fig 11 / §5.7): DeepMVI provides
    // gains over DropCell on the multidimensional datasets. The gain is most
    // pronounced — and the claim is testable without seed-level luck — when
    // siblings go missing *simultaneously* (blackout), where DropCell's
    // average has nothing left to drop to; under sparse MCAR, dropping one of
    // six correlated stores from an average is nearly optimal and the margin
    // is coin-flip noise at this budget.
    let ds = generate_with_shape(DatasetName::JanataHack, &[6, 5], 134, 8);
    let inst = Scenario::Blackout { block_len: 14 }.apply(&ds, 5);
    let cfg = DeepMviConfig {
        p: 16,
        n_heads: 2,
        ctx_windows: 14,
        max_steps: 700,
        lr: 4e-3,
        ..Default::default()
    };
    let r = evaluate_analytics(&DeepMvi::new(cfg), &inst);
    assert!(
        r.gain_over_dropcell() > 0.0,
        "DeepMVI gain {} (method {}, dropcell {})",
        r.gain_over_dropcell(),
        r.method_agg_mae,
        r.dropcell_agg_mae
    );
    // Under sparse MCAR, DeepMVI must at least stay in DropCell's league.
    let mcar = Scenario::mcar(1.0).apply(&ds, 5);
    let cfg2 = DeepMviConfig {
        p: 16,
        n_heads: 2,
        ctx_windows: 14,
        max_steps: 400,
        lr: 4e-3,
        ..Default::default()
    };
    let r2 = evaluate_analytics(&DeepMvi::new(cfg2), &mcar);
    assert!(
        r2.method_agg_mae < 1.5 * r2.dropcell_agg_mae,
        "DeepMVI aggregate MAE {} far above DropCell {}",
        r2.method_agg_mae,
        r2.dropcell_agg_mae
    );
}

#[test]
fn aggregate_gain_is_bounded_by_dropcell_error() {
    // gain = dropcell − method ≤ dropcell since method MAE ≥ 0.
    let ds = generate_with_shape(DatasetName::Electricity, &[5], 250, 2);
    let inst = Scenario::mcar(1.0).apply(&ds, 9);
    for method in [Method::CdRec, Method::MeanImpute, Method::LinearInterp] {
        let imp = method.build(MethodBudget::Quick);
        let r = evaluate_analytics(imp.as_ref(), &inst);
        assert!(r.gain_over_dropcell() <= r.dropcell_agg_mae + 1e-12, "{}", imp.name());
    }
}
