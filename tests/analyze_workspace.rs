//! Meta-test: the live workspace must be clean under `mvi-analyze`.
//!
//! This is the teeth behind the concurrency/unsafety/panic-surface
//! invariants documented in `ARCHITECTURE.md`: any regression — a lock
//! acquired out of protocol order in `crates/serve`, an `unsafe` block
//! without a `// SAFETY:` justification, a `Relaxed` publication atomic, or
//! a bare `unwrap` on the serving hot path — fails `cargo test` the same
//! way it fails the dedicated CI `analyze` job.

use std::path::Path;

#[test]
fn workspace_has_zero_static_analysis_findings() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = mvi_analyze::analyze_workspace(root).expect("workspace scan");
    assert!(
        report.files_scanned > 50,
        "suspiciously small scan ({} files) — did the walker break?",
        report.files_scanned
    );
    assert!(!report.deny(), "static-analysis findings on the live workspace:\n{}", report.human());
    // Suppressions are allowed but must stay deliberate: every one carries a
    // justification (the lexer guarantees the annotation parsed), and the
    // count is pinned so a new `mvi-allow` shows up in review.
    for s in &report.suppressed {
        assert!(
            !s.justification.is_empty(),
            "suppression without justification at {}:{}",
            s.file,
            s.line
        );
    }
}
