//! Quality-focused integration tests for DeepMVI: it must actually learn the
//! structures its modules exist for, and the §5.5 ablation ordering must hold on
//! data designed to isolate each module.

use deepmvi_suite::data::dataset::{Dataset, DimSpec};
use deepmvi_suite::data::generators::{generate_with_shape, DatasetName};
use deepmvi_suite::data::imputer::{Imputer, LinearInterpImputer, MeanImputer};
use deepmvi_suite::data::metrics::mae;
use deepmvi_suite::data::scenarios::Scenario;
use deepmvi_suite::deepmvi::{DeepMvi, DeepMviConfig, KernelMode};
use deepmvi_suite::tensor::Tensor;

fn test_cfg() -> DeepMviConfig {
    DeepMviConfig {
        p: 12,
        n_heads: 2,
        embed_dim: 6,
        ctx_windows: 24,
        max_steps: 350,
        batch_size: 10,
        val_instances: 32,
        eval_every: 35,
        patience: 4,
        threads: 2,
        lr: 4e-3,
        ..Default::default()
    }
}

#[test]
fn beats_both_reference_floors_on_seasonal_correlated_data() {
    let ds = generate_with_shape(DatasetName::Chlorine, &[8], 400, 12);
    let inst = Scenario::mcar(1.0).apply(&ds, 21);
    let obs = inst.observed();
    let dm = mae(&ds.values, &DeepMvi::new(test_cfg()).impute(&obs), &inst.missing);
    let mean = mae(&ds.values, &MeanImputer.impute(&obs), &inst.missing);
    let interp = mae(&ds.values, &LinearInterpImputer.impute(&obs), &inst.missing);
    assert!(dm < mean, "deepmvi {dm} vs mean {mean}");
    assert!(dm < interp, "deepmvi {dm} vs interp {interp}");
}

#[test]
fn kernel_regression_carries_purely_cross_series_signal() {
    // Construct data where the within-series signal is useless (independent noise
    // paths) but siblings along dim 0 are near-copies: only KR can impute this.
    let (k1, k2, t_len) = (6usize, 4usize, 240usize);
    let mut base = vec![vec![0.0f64; t_len]; k2];
    let mut state = 0.7f64;
    for item in base.iter_mut() {
        for (tt, v) in item.iter_mut().enumerate() {
            state = 0.95 * state + 0.3 * ((tt * 2654435761 % 1000) as f64 / 1000.0 - 0.5);
            *v = state;
        }
    }
    let values = Tensor::from_fn(&[k1, k2, t_len], |idx| {
        let (s, i, tt) = (idx[0], idx[1], idx[2]);
        base[i][tt] * (0.9 + 0.02 * s as f64)
    });
    let dims = vec![DimSpec::indexed("store", "st", k1), DimSpec::indexed("item", "it", k2)];
    let ds = Dataset::new("xseries", dims, values);
    let inst = Scenario::mcar(1.0).apply(&ds, 5);
    let obs = inst.observed();

    let with_kr = mae(&ds.values, &DeepMvi::new(test_cfg()).impute(&obs), &inst.missing);
    let no_kr = mae(
        &ds.values,
        &DeepMvi::new(DeepMviConfig { kernel_mode: KernelMode::Off, ..test_cfg() }).impute(&obs),
        &inst.missing,
    );
    assert!(
        with_kr < no_kr,
        "KR should dominate on cross-series-only data: with {with_kr} vs without {no_kr}"
    );
    // And the absolute error must be small: siblings are near-identical.
    assert!(with_kr < 0.25, "with_kr {with_kr}");
}

#[test]
fn temporal_transformer_carries_purely_within_series_signal_under_blackout() {
    // Blackout removes all cross-series signal; seasonal structure is the only
    // way out. The full model must beat the no-transformer ablation.
    let ds = generate_with_shape(DatasetName::Chlorine, &[6], 400, 31);
    let inst = Scenario::Blackout { block_len: 30 }.apply(&ds, 8);
    let obs = inst.observed();
    let full = mae(&ds.values, &DeepMvi::new(test_cfg()).impute(&obs), &inst.missing);
    let no_tt = mae(
        &ds.values,
        &DeepMvi::new(DeepMviConfig { use_temporal_transformer: false, ..test_cfg() }).impute(&obs),
        &inst.missing,
    );
    assert!(
        full < no_tt + 0.05,
        "transformer should help under blackout: full {full} vs no-tt {no_tt}"
    );
}

#[test]
fn window_size_auto_switches_on_long_blocks() {
    use deepmvi_suite::deepmvi::DeepMviModel;
    let ds = generate_with_shape(DatasetName::Electricity, &[5], 2000, 3);
    let short = Scenario::mcar(1.0).apply(&ds, 1);
    let long = Scenario::Blackout { block_len: 150 }.apply(&ds, 1);
    let cfg = DeepMviConfig::default();
    assert_eq!(DeepMviModel::new(&cfg, &short.observed()).window(), 10);
    assert_eq!(DeepMviModel::new(&cfg, &long.observed()).window(), 20);
}

#[test]
fn deterministic_given_seed() {
    let ds = generate_with_shape(DatasetName::AirQ, &[4], 150, 4);
    let inst = Scenario::mcar(1.0).apply(&ds, 9);
    let obs = inst.observed();
    let cfg = DeepMviConfig { max_steps: 30, ..test_cfg() };
    let a = DeepMvi::new(cfg.clone()).impute(&obs);
    let b = DeepMvi::new(cfg).impute(&obs);
    assert_eq!(a, b, "same seed must give identical imputations");
}
