//! Determinism golden tests: identical seed + config must yield bitwise
//! identical imputations — across repeated runs in one process, and across
//! worker-thread counts (`MVI_THREADS=1` vs `N`). CI runs the whole suite
//! under both thread settings, so any thread-count-dependent reduction order
//! that sneaks into the kernels, the trainer or the inference fan-out fails
//! the build twice over.
//!
//! Both tests live in one integration-test binary on purpose:
//! `mvi_parallel::configure_threads` is process-global, and integration tests
//! in one file share a process. They additionally serialize on [`POOL_LOCK`] —
//! cargo's default harness runs tests concurrently, and a concurrent
//! `configure_threads(1)` would silently clamp the other test's multi-threaded
//! arm to one worker, making the thread-invariance check pass vacuously.

use deepmvi::{DeepMvi, DeepMviConfig};
use mvi_data::generators::{generate_with_shape, DatasetName};
use mvi_data::imputer::Imputer;
use mvi_data::scenarios::Scenario;
use mvi_tensor::Tensor;
use std::sync::Mutex;

/// Guards the process-global worker-thread budget across the tests here.
static POOL_LOCK: Mutex<()> = Mutex::new(());

fn fixture() -> mvi_data::dataset::ObservedDataset {
    let ds = generate_with_shape(DatasetName::Chlorine, &[5], 200, 9);
    Scenario::mcar(1.0).apply(&ds, 4).observed()
}

fn impute_with_threads(cfg_threads: usize, pool_threads: usize) -> Tensor {
    mvi_parallel::configure_threads(pool_threads);
    let cfg =
        DeepMviConfig { max_steps: 30, threads: cfg_threads, seed: 1234, ..DeepMviConfig::tiny() };
    let out = DeepMvi::new(cfg).impute(&fixture());
    mvi_parallel::configure_threads(0); // restore the default budget
    out
}

#[test]
fn identical_seed_and_config_are_bitwise_reproducible_across_runs_and_threads() {
    let _pool = POOL_LOCK.lock().unwrap();
    // Two independent runs, single-threaded: the golden reference.
    let first = impute_with_threads(1, 1);
    let second = impute_with_threads(1, 1);
    assert_eq!(first.data(), second.data(), "two identical single-threaded runs diverged bitwise");

    // Same seed + config with parallel training, inference and kernels must
    // reproduce the golden run bit for bit: worker splits change *who*
    // computes each value, never the per-value operation order.
    for threads in [2usize, 4, 8] {
        let parallel = impute_with_threads(threads, threads);
        assert_eq!(
            first.data(),
            parallel.data(),
            "imputation with {threads} worker threads diverged bitwise from 1 thread"
        );
    }
}

#[test]
fn training_reports_are_thread_invariant_too() {
    let _pool = POOL_LOCK.lock().unwrap();
    // Not just the imputed values: the validation trajectory (which drives
    // early stopping and the persisted shared std) must match as well.
    let obs = fixture();
    let run = |threads: usize| {
        mvi_parallel::configure_threads(threads);
        let cfg = DeepMviConfig { max_steps: 20, threads, seed: 77, ..DeepMviConfig::tiny() };
        let mut model = deepmvi::DeepMviModel::new(&cfg, &obs);
        let report = model.fit(&obs);
        mvi_parallel::configure_threads(0);
        (report.steps, report.best_val, report.val_trace, model.shared_std())
    };
    let serial = run(1);
    let parallel = run(4);
    assert_eq!(serial.0, parallel.0, "step counts diverged");
    assert_eq!(serial.1.to_bits(), parallel.1.to_bits(), "best_val diverged");
    assert_eq!(serial.3, parallel.3, "shared std diverged");
    let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&serial.2), bits(&parallel.2), "validation traces diverged");
}
