//! End-to-end integration: every method in the registry runs on real generated
//! instances, produces finite values of the right shape, leaves observed entries
//! untouched, and the field as a whole beats the trivial floor.

use deepmvi_suite::data::generators::{generate_with_shape, DatasetName};
use deepmvi_suite::data::imputer::{Imputer, MeanImputer};
use deepmvi_suite::data::metrics::mae;
use deepmvi_suite::data::scenarios::Scenario;
use deepmvi_suite::eval::{Method, MethodBudget};

fn quick(method: Method) -> Box<dyn Imputer> {
    method.build(MethodBudget::Quick)
}

#[test]
fn every_method_completes_on_every_scenario() {
    let ds = generate_with_shape(DatasetName::AirQ, &[5], 160, 3);
    let scenarios = [
        Scenario::mcar(1.0),
        Scenario::MissDisj,
        Scenario::MissOver,
        Scenario::Blackout { block_len: 12 },
        Scenario::MissPoint { block_len: 1, missing_rate: 0.1 },
    ];
    let methods = [
        Method::SvdImp,
        Method::SoftImpute,
        Method::Svt,
        Method::CdRec,
        Method::Trmf,
        Method::Stmvl,
        Method::DynaMmo,
        Method::MeanImpute,
        Method::LinearInterp,
    ];
    for scenario in &scenarios {
        let inst = scenario.apply(&ds, 5);
        let obs = inst.observed();
        for method in methods {
            let imp = quick(method);
            let out = imp.impute(&obs);
            assert_eq!(out.shape(), ds.values.shape(), "{} changed shape", imp.name());
            assert!(out.all_finite(), "{} produced non-finite values", imp.name());
            for i in 0..out.len() {
                if obs.available.at(i) {
                    assert_eq!(out.at(i), obs.values.at(i), "{} modified observed", imp.name());
                }
            }
        }
    }
}

#[test]
fn learned_methods_complete_on_multidim_data() {
    let ds = generate_with_shape(DatasetName::JanataHack, &[4, 5], 130, 9);
    let inst = Scenario::mcar(1.0).apply(&ds, 2);
    let obs = inst.observed();
    for method in [Method::Brits, Method::GpVae, Method::Transformer] {
        let imp = quick(method);
        let out = imp.impute(&obs);
        assert_eq!(out.shape(), ds.values.shape(), "{}", imp.name());
        assert!(out.all_finite(), "{}", imp.name());
    }
}

#[test]
fn conventional_methods_beat_the_mean_floor_on_correlated_seasonal_data() {
    // Chlorine is the easiest dataset (high repetition + high relatedness): every
    // serious method must beat per-series mean imputation here.
    let ds = generate_with_shape(DatasetName::Chlorine, &[8], 300, 4);
    let inst = Scenario::mcar(1.0).apply(&ds, 6);
    let obs = inst.observed();
    let floor = mae(&ds.values, &MeanImputer.impute(&obs), &inst.missing);
    for method in [Method::CdRec, Method::DynaMmo, Method::SvdImp, Method::Stmvl] {
        let imp = quick(method);
        let err = mae(&ds.values, &imp.impute(&obs), &inst.missing);
        assert!(err < floor, "{} {err} vs floor {floor}", imp.name());
    }
}

#[test]
fn metrics_are_consistent_across_the_harness() {
    use deepmvi_suite::eval::run_method;
    let ds = generate_with_shape(DatasetName::Gas, &[6], 200, 8);
    let inst = Scenario::mcar(0.5).apply(&ds, 3);
    let imp = quick(Method::CdRec);
    let r = run_method(imp.as_ref(), &inst);
    // Recompute by hand.
    let out = imp.impute(&inst.observed());
    let expected = mae(&ds.values, &out, &inst.missing);
    assert!((r.mae - expected).abs() < 1e-12);
    assert!(r.rmse >= r.mae);
}
