//! Differential tests for the tape-free forward evaluator: the value-only
//! `Eval` backend must be **bitwise identical** to the differentiation-tape
//! path over randomized models, datasets and windows — including windows past
//! the trained length (rolled temporal horizon) and grouped batches. CI runs
//! this suite under `MVI_THREADS=1` and the default thread budget, so the
//! guarantee holds across worker splits too.

use deepmvi::{DeepMviConfig, DeepMviModel, InferScratch, KernelMode, TapeScratch, WindowQuery};
use mvi_data::generators::{generate_with_shape, DatasetName};
use mvi_data::scenarios::Scenario;
use proptest::prelude::*;

fn bits(v: &[f64]) -> Vec<u64> {
    v.iter().map(|x| x.to_bits()).collect()
}

fn config_case(
    variant: u8,
    p: usize,
    n_heads: usize,
    ctx_windows: usize,
    seed: u64,
) -> DeepMviConfig {
    let mut cfg = DeepMviConfig {
        p,
        n_heads,
        ctx_windows,
        embed_dim: 4,
        max_siblings: 3, // small enough that the top-L pre-selection triggers
        seed,
        ..DeepMviConfig::tiny()
    };
    // Sweep the ablation space so every forward component (and its absence)
    // is covered: transformer, context window, fine-grained mean, kernel
    // regression in all three modes.
    match variant % 5 {
        0 => {}
        1 => cfg.kernel_mode = KernelMode::Off,
        2 => {
            cfg.use_temporal_transformer = false;
            cfg.kernel_mode = KernelMode::Flattened;
        }
        3 => cfg.use_context_window = false,
        _ => {
            cfg.use_fine_grained = false;
        }
    }
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The core contract of the serving hot path: for every missing-window
    /// query of a random model/dataset, the tape-free evaluator reproduces
    /// the tape's predictions bit for bit — in-range windows, rolled-horizon
    /// windows past the trained length, and scratch reuse across queries.
    #[test]
    fn eval_backend_is_bitwise_identical_to_the_tape(
        n_series in 2usize..5,
        t_len in 6usize..14, // in windows of 10
        variant in 0u8..5,
        p_small in 0u8..2,
        n_heads in 1usize..3,
        ctx_windows in 4usize..12,
        seed in 0u64..500,
    ) {
        let t_len = t_len * 10;
        let p = if p_small == 0 { 4usize } else { 8 };
        let ds = generate_with_shape(DatasetName::Chlorine, &[n_series], t_len, seed);
        let mut obs = Scenario::mcar(1.0).apply(&ds, seed % 17).observed();
        let cfg = config_case(variant, p, n_heads, ctx_windows, seed);
        let model = DeepMviModel::new(&cfg, &obs);
        let w = model.window();

        // Grow the dataset past the trained length so rolled-horizon windows
        // are part of every run: one observed window, one missing window.
        obs.extend_time(t_len + 2 * w);
        for s in 0..n_series {
            let vals: Vec<f64> =
                (0..w).map(|i| ((t_len + i) as f64 / 7.0 + s as f64).sin()).collect();
            obs.record_range(s, t_len, &vals);
        }

        let queries = model.missing_queries(&obs);
        prop_assert!(!queries.is_empty(), "fixture lost its missing values");
        prop_assert!(
            queries.iter().any(|q| q.positions.iter().any(|&t| t >= t_len)),
            "no rolled-horizon queries in the grown region"
        );

        let mut tape = TapeScratch::new();
        let mut eval = InferScratch::new();
        let mut out = Vec::new();
        for q in &queries {
            let expect = model.predict_window_tape(&mut tape, &obs, q);
            out.clear();
            model.predict_window_into(&mut eval, &obs, q, &mut out);
            prop_assert!(
                bits(&expect) == bits(&out),
                "tape and eval diverged on s={} window={}",
                q.s,
                q.window_j
            );
        }
    }
}

#[test]
fn grouped_batches_match_per_query_evaluation_bitwise() {
    let ds = generate_with_shape(DatasetName::Gas, &[4], 120, 11);
    let obs = Scenario::mcar(1.0).apply(&ds, 5).observed();
    let model = DeepMviModel::new(&DeepMviConfig::tiny(), &obs);
    let base = model.missing_queries(&obs);
    assert!(!base.is_empty());

    // A batch with heavy (series, window) duplication: the full query, a
    // prefix, a suffix, and a reversed-order duplicate of each base query.
    let mut batch: Vec<WindowQuery> = Vec::new();
    for q in &base {
        batch.push(q.clone());
        let half = q.positions.len().div_ceil(2);
        batch.push(WindowQuery {
            s: q.s,
            window_j: q.window_j,
            positions: q.positions[..half].to_vec(),
        });
        batch.push(WindowQuery {
            s: q.s,
            window_j: q.window_j,
            positions: q.positions[q.positions.len() - half..].to_vec(),
        });
    }

    let grouped = model.predict_batch(&obs, &batch, 1);
    let mut scratch = InferScratch::new();
    for (q, got) in batch.iter().zip(&grouped) {
        let solo = model.predict_window(&mut scratch, &obs, q);
        assert_eq!(bits(&solo), bits(got), "grouping changed s={} w={}", q.s, q.window_j);
    }

    // Thread fan-out over the duplicated batch is equally invariant.
    assert_eq!(grouped, model.predict_batch(&obs, &batch, 4), "thread count changed grouping");
}
