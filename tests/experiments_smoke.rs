//! Smoke-level runs of the experiment drivers themselves: the exact pipeline the
//! benchmark binaries execute, at miniature scale, so a broken experiment is a
//! failing test rather than a silent bad table.

use deepmvi_suite::eval::experiments::{
    fig10b_scaling, fig11_analytics, fig4_visual, fig8_finegrained, table1_datasets, ExpConfig,
};
use deepmvi_suite::eval::Table;

fn assert_numeric_table(t: &Table, label_cols: usize) {
    assert!(!t.rows.is_empty(), "{}: no rows", t.title);
    for (r, row) in t.rows.iter().enumerate() {
        assert_eq!(row.len(), t.headers.len(), "{}: ragged row {r}", t.title);
        for c in label_cols..row.len() {
            let v: f64 = row[c].parse().unwrap_or_else(|_| {
                panic!("{}: cell [{r},{c}] = {:?} not numeric", t.title, row[c])
            });
            assert!(v.is_finite(), "{}: cell [{r},{c}] not finite", t.title);
        }
    }
}

#[test]
fn table1_driver_produces_the_inventory() {
    let t = table1_datasets(&ExpConfig::smoke());
    assert_eq!(t.rows.len(), 10);
    assert_numeric_table(&t, 1);
    // The two multidimensional datasets report dims = 2.
    let dims_col = t.col("dims").unwrap();
    let multidim = t.rows.iter().filter(|r| r[dims_col] == "2").count();
    assert_eq!(multidim, 2);
}

#[test]
fn fig4_driver_tracks_missing_blocks() {
    let tables = fig4_visual(&ExpConfig::smoke());
    assert_eq!(tables.len(), 2, "MCAR and Blackout panels");
    for t in &tables {
        assert_numeric_table(t, 0);
        assert_eq!(t.headers, vec!["t", "truth", "CDRec", "DynaMMO", "DeepMVI"]);
    }
    // The Blackout panel covers one contiguous range.
    let blackout = &tables[1];
    let first: usize = blackout.rows[0][0].parse().unwrap();
    let last: usize = blackout.rows[blackout.rows.len() - 1][0].parse().unwrap();
    assert_eq!(last - first + 1, blackout.rows.len(), "blackout rows not contiguous");
}

#[test]
fn fig8_driver_reports_each_block_size() {
    let t = fig8_finegrained(&ExpConfig::smoke(), &[1, 4]);
    assert_eq!(t.rows.len(), 2);
    assert_numeric_table(&t, 0);
}

#[test]
fn fig10b_driver_shows_trainable_runtimes() {
    let t = fig10b_scaling(&ExpConfig::smoke(), &[256, 512]);
    assert_numeric_table(&t, 0);
    let secs_col = t.col("seconds").unwrap();
    for r in 0..t.rows.len() {
        assert!(t.value(r, secs_col).unwrap() > 0.0);
    }
}

#[test]
fn fig11_driver_produces_gain_columns() {
    let t = fig11_analytics(&ExpConfig::smoke());
    assert_eq!(t.rows.len(), 4, "Climate, Electricity, JanataHack, M5");
    assert_numeric_table(&t, 1);
}
