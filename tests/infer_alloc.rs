//! Allocation-regression smoke for the serving hot path: once an
//! [`deepmvi::InferScratch`] is warm, `predict_window_into` must perform
//! **zero heap allocations** — the whole window forward pass (attention
//! context, kernel regression, output head) runs in recycled evaluator slots
//! and reused scratch buffers, with parameters read by `Arc` share.
//!
//! This lives in its own integration-test binary because it installs a
//! counting global allocator.

use deepmvi::{DeepMviConfig, DeepMviModel, InferScratch};
use mvi_data::generators::{generate_with_shape, DatasetName};
use mvi_data::scenarios::Scenario;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Forwards to the system allocator, counting allocations while armed.
struct CountingAlloc;

static ALLOCS: AtomicUsize = AtomicUsize::new(0);
static ARMED: AtomicBool = AtomicBool::new(false);
static LAST_SIZE: AtomicUsize = AtomicUsize::new(0);

// SAFETY: pure pass-through to `System`; the only added work is on atomics,
// which never allocate, so every `GlobalAlloc` contract is inherited intact.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: caller upholds the `GlobalAlloc` contract for `layout`.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            LAST_SIZE.store(layout.size(), Ordering::Relaxed);
        }
        // SAFETY: forwarding our caller's contract verbatim to `System`.
        unsafe { System.alloc(layout) }
    }

    // SAFETY: caller upholds the `GlobalAlloc` contract for `layout`.
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            LAST_SIZE.store(layout.size(), Ordering::Relaxed);
        }
        // SAFETY: forwarding our caller's contract verbatim to `System`.
        unsafe { System.alloc_zeroed(layout) }
    }

    // SAFETY: caller upholds the `GlobalAlloc` contract for `ptr`/`layout`.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            LAST_SIZE.store(new_size, Ordering::Relaxed);
        }
        // SAFETY: forwarding our caller's contract verbatim to `System`.
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    // SAFETY: caller upholds the `GlobalAlloc` contract for `ptr`/`layout`.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: forwarding our caller's contract verbatim to `System`.
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_predict_window_performs_zero_heap_allocations() {
    // Untrained weights are fine: allocation behaviour depends on shapes and
    // control flow, not parameter values. `max_siblings: 2` forces the top-L
    // sibling pre-selection onto the measured path too.
    let ds = generate_with_shape(DatasetName::Electricity, &[5], 120, 3);
    let obs = Scenario::mcar(1.0).apply(&ds, 7).observed();
    let cfg = DeepMviConfig { max_siblings: 2, ..DeepMviConfig::tiny() };
    let model = DeepMviModel::new(&cfg, &obs);
    let queries = model.missing_queries(&obs);
    assert!(queries.len() >= 4, "fixture needs a spread of windows");

    let mut scratch = InferScratch::new();
    let mut out = Vec::new();
    // Warm-up: two full sweeps size every recycled buffer to its steady state.
    let mut warm = Vec::new();
    for sweep in 0..2 {
        for q in &queries {
            out.clear();
            model.predict_window_into(&mut scratch, &obs, q, &mut out);
            assert_eq!(out.len(), q.positions.len());
            if sweep == 0 {
                warm.extend(out.iter().map(|v| v.to_bits()));
            }
        }
    }

    // Measured sweep: same queries, allocator armed strictly around each
    // forward call (the claim under test is the hot call itself; the harness
    // and bookkeeping between calls are not part of it).
    ALLOCS.store(0, Ordering::SeqCst);
    let mut measured = Vec::with_capacity(warm.len());
    let mut per_query = Vec::with_capacity(queries.len());
    for q in &queries {
        out.clear();
        let before = ALLOCS.load(Ordering::SeqCst);
        ARMED.store(true, Ordering::SeqCst);
        model.predict_window_into(&mut scratch, &obs, q, &mut out);
        ARMED.store(false, Ordering::SeqCst);
        per_query.push(ALLOCS.load(Ordering::SeqCst) - before);
        measured.extend(out.iter().map(|v| v.to_bits()));
    }
    let allocs = ALLOCS.load(Ordering::SeqCst);

    assert_eq!(measured, warm, "scratch reuse changed predictions");
    assert!(
        per_query.iter().all(|&n| n == 0) && allocs == 0,
        "steady-state predict_window_into allocated {allocs} times (last size {}); per query: \
         {per_query:?}",
        LAST_SIZE.load(Ordering::SeqCst)
    );
}
