//! Fault drills for the network front door: every failure `mvi-net`
//! promises to survive is injected over a real loopback connection and must
//! come back as a **typed wire error or a clean reply — never a panic, a
//! hang, or a silently dropped request**:
//!
//! * a flooded server sheds load with the typed `Overloaded` code and a
//!   retry-after hint, and a client left retrying on that hint eventually
//!   succeeds once the flood passes;
//! * a stalled evaluation (injected through [`mvi_serve::EvalHook`]) frees
//!   the wire client with the typed `DeadlineExceeded` code while the
//!   connection stays usable for the next request;
//! * graceful drain answers **every** accepted request with a reply frame —
//!   real values or typed `Shutdown` — with zero lost replies;
//! * fuzzed garbage thrown at the listener never panics the server: the
//!   batcher's panic count and the fresh-request path are unchanged after
//!   the storm;
//! * a server killed mid-stream surfaces an ambiguous (non-retried) error,
//!   and the client reconnects to the restarted server through its
//!   connect-refused retry loop.
//!
//! The trained model is built once per process; every test restores its own
//! engine from the shared snapshot and binds its own ephemeral-port server.

use deepmvi::{DeepMviConfig, DeepMviModel};
use mvi_data::dataset::ObservedDataset;
use mvi_data::generators::{generate_with_shape, DatasetName};
use mvi_data::scenarios::Scenario;
use mvi_net::{ClientConfig, ErrorCode, NetClient, NetError, NetServer, RetryPolicy, ServerConfig};
use mvi_serve::{BatcherConfig, ImputationEngine, ServeSnapshot};
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

const SERIES: usize = 3;
const T_LEN: usize = 120;

struct Fixture {
    obs: ObservedDataset,
    snapshot_json: String,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let ds = generate_with_shape(DatasetName::Chlorine, &[SERIES], T_LEN, 29);
        let obs = Scenario::mcar(0.85).apply(&ds, 13).observed();
        let cfg = DeepMviConfig { max_steps: 10, ..DeepMviConfig::tiny() };
        let mut model = DeepMviModel::new(&cfg, &obs);
        model.fit(&obs);
        let snapshot_json = ServeSnapshot::capture(&model, &obs).to_json();
        Fixture { obs, snapshot_json }
    })
}

fn engine() -> Arc<ImputationEngine> {
    let fix = fixture();
    let snap = ServeSnapshot::from_json(&fix.snapshot_json).expect("fixture snapshot parses");
    let frozen = snap.restore(&fix.obs).expect("fixture model restores");
    Arc::new(ImputationEngine::new(frozen, fix.obs.clone()).expect("fixture engine builds"))
}

fn no_retry() -> ClientConfig {
    ClientConfig { retry: RetryPolicy::none(), ..ClientConfig::default() }
}

/// Installs an eval hook that blocks every forward pass until `release` goes
/// true — the stall/flood injection seam.
fn stall_until(eng: &ImputationEngine, release: &Arc<AtomicBool>) {
    let gate = Arc::clone(release);
    eng.set_eval_hook(Some(Box::new(move |_results| {
        while !gate.load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_millis(2));
        }
    })));
}

// ---------------------------------------------------------------------------
// Flood: typed shed + retrying client rides it out
// ---------------------------------------------------------------------------

#[test]
fn flooded_server_sheds_typed_and_a_retrying_client_eventually_succeeds() {
    let eng = engine();
    let release = Arc::new(AtomicBool::new(false));
    stall_until(&eng, &release);

    // A tiny queue behind a stalled worker: floods must shed, not buffer.
    let config = ServerConfig {
        batcher: BatcherConfig {
            max_batch: 1,
            queue_cap: 2,
            deadline: Some(Duration::from_secs(30)),
        },
        ..ServerConfig::default()
    };
    let server = NetServer::bind("127.0.0.1:0", Arc::clone(&eng), config).unwrap();
    let addr = server.local_addr();

    // One request occupies the worker inside the stalled evaluation...
    let stalled =
        std::thread::spawn(move || NetClient::new(addr, no_retry()).query(0, 0, T_LEN as u32));
    assert!(
        wait_for(Duration::from_secs(10), || eng.stats().batches >= 1),
        "the stalling request must reach the worker"
    );

    // ...then a flood over the 2-deep queue: the excess must come back as
    // the typed Overloaded code with the server's retry-after hint.
    let floods: Vec<_> = (0..6)
        .map(|_| {
            std::thread::spawn(move || NetClient::new(addr, no_retry()).query(1, 0, T_LEN as u32))
        })
        .collect();
    // A patient client retries on that same typed signal. Its first attempts
    // land in the flood and shed; once the stall releases, a retry gets in.
    let retry = RetryPolicy {
        max_attempts: 30,
        base: Duration::from_millis(20),
        max_delay: Duration::from_millis(100),
        ..RetryPolicy::default()
    };
    let patient = std::thread::spawn(move || {
        NetClient::new(addr, ClientConfig { retry, ..ClientConfig::default() }).query(
            2,
            0,
            T_LEN as u32,
        )
    });

    std::thread::sleep(Duration::from_millis(250));
    release.store(true, Ordering::Release);

    let mut shed = 0;
    for h in floods {
        match h.join().unwrap() {
            Ok(vals) => assert_eq!(vals.len(), T_LEN),
            Err(e) => {
                assert_eq!(e.code(), Some(ErrorCode::Overloaded), "flood error must be typed: {e}");
                assert!(e.retry_after().is_some(), "shed replies must carry the backoff hint");
                shed += 1;
            }
        }
    }
    assert!(shed >= 1, "a flood over a 2-deep queue must shed load");
    assert_eq!(stalled.join().unwrap().unwrap().len(), T_LEN);
    assert_eq!(
        patient.join().unwrap().expect("the retrying client must eventually succeed").len(),
        T_LEN
    );
    assert_eq!(server.panics_caught(), Some(0));
    server.shutdown();
}

fn wait_for(deadline: Duration, mut ok: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if ok() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    ok()
}

// ---------------------------------------------------------------------------
// Deadlines: a stalled handler cannot wedge the connection
// ---------------------------------------------------------------------------

#[test]
fn stalled_evaluation_returns_deadline_code_and_the_connection_survives() {
    let eng = engine();
    let release = Arc::new(AtomicBool::new(false));
    stall_until(&eng, &release);

    let config = ServerConfig {
        batcher: BatcherConfig {
            deadline: Some(Duration::from_millis(120)),
            ..BatcherConfig::default()
        },
        ..ServerConfig::default()
    };
    let server = NetServer::bind("127.0.0.1:0", Arc::clone(&eng), config).unwrap();
    let mut client = NetClient::new(server.local_addr(), no_retry());

    // The stalled evaluation frees the wire client at the deadline, typed —
    // and deadline errors are NOT retryable (the work may still complete).
    let err = client.query(0, 0, T_LEN as u32).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::DeadlineExceeded), "stall must be typed: {err}");
    assert!(!err.retryable(), "a deadline expiry is ambiguous and must not auto-retry");

    // Heal the engine; the SAME connection must serve the next request —
    // a stalled handler wedges neither the client nor its socket.
    release.store(true, Ordering::Release);
    eng.set_eval_hook(None); // waits for the stalled evaluation to finish
    let healed = client.query(0, 0, 40).unwrap();
    assert_eq!(healed.len(), 40);
    assert_eq!(server.stats().accepted, 1, "the deadline reply must not cost the connection");
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Graceful drain: zero lost replies
// ---------------------------------------------------------------------------

#[test]
fn graceful_drain_answers_every_accepted_request_with_zero_lost_replies() {
    let eng = engine();
    let release = Arc::new(AtomicBool::new(false));
    stall_until(&eng, &release);

    // A 1-wide batcher behind a stall: one request will be mid-evaluation
    // and the rest queued when the drain starts.
    let config = ServerConfig {
        batcher: BatcherConfig {
            max_batch: 1,
            queue_cap: 64,
            deadline: Some(Duration::from_secs(30)),
        },
        ..ServerConfig::default()
    };
    let server = NetServer::bind("127.0.0.1:0", Arc::clone(&eng), config).unwrap();
    let addr = server.local_addr();

    let clients: Vec<_> = (0..8)
        .map(|i| {
            std::thread::spawn(move || {
                NetClient::new(addr, no_retry()).query((i % SERIES) as u32, 0, T_LEN as u32)
            })
        })
        .collect();
    assert!(
        wait_for(Duration::from_secs(10), || eng.stats().batches >= 1),
        "the first request must reach the stalled worker"
    );
    // Give the remaining clients time to be accepted and queued, then start
    // the drain while they are all in flight; release the stall so the
    // mid-evaluation request can finish with its real answer.
    std::thread::sleep(Duration::from_millis(200));
    let unblock = {
        let release = Arc::clone(&release);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(150));
            release.store(true, Ordering::Release);
        })
    };
    server.shutdown(); // blocks until every reply is written and every thread joined

    let mut answered = 0usize;
    let mut drained = 0usize;
    for h in clients {
        match h.join().unwrap() {
            // The in-flight request (and any served before the drain) gets
            // its real values...
            Ok(vals) => {
                assert_eq!(vals.len(), T_LEN);
                answered += 1;
            }
            // ...and every queued request gets the typed drain reply. What
            // can NEVER happen is a transport-level loss: an Io/Frame error
            // would mean a request died without a reply frame.
            Err(e) => match e.code() {
                Some(ErrorCode::Shutdown) => drained += 1,
                other => panic!("lost reply: {e} (code {other:?})"),
            },
        }
    }
    unblock.join().unwrap();
    assert_eq!(answered + drained, 8, "every accepted request must be answered");
    assert!(answered >= 1, "the mid-drain evaluation must complete with real values");
    assert!(drained >= 1, "queued requests must receive the typed Shutdown frame");
}

// ---------------------------------------------------------------------------
// Fuzzed frames: the storm leaves no mark
// ---------------------------------------------------------------------------

#[test]
fn fuzzed_garbage_never_panics_the_server_and_leaves_it_serving() {
    let eng = engine();
    let server = NetServer::bind("127.0.0.1:0", Arc::clone(&eng), ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    // A healthy query first, so the post-storm comparison is honest.
    let mut client = NetClient::new(addr, no_retry());
    let before = client.query(0, 0, 60).unwrap();
    assert_eq!(server.panics_caught(), Some(0));

    // The storm: raw sockets throwing garbage, truncations, bit flips and
    // hostile length prefixes at the listener. A deterministic xorshift
    // drives the payloads so failures replay.
    let mut rng = 0x006e_6574_5f66_757a_u64 | 1;
    let mut next = move || {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    let valid = mvi_net::frame::encode(&mvi_net::Frame::Query {
        tenant: String::new(),
        s: 0,
        start: 0,
        end: 60,
    });
    for round in 0..40 {
        let mut bytes = match round % 4 {
            // Pure garbage.
            0 => (0..(next() % 64 + 1)).map(|_| (next() & 0xff) as u8).collect::<Vec<u8>>(),
            // A valid frame cut short (the close is the injection).
            1 => valid[..(next() as usize % (valid.len() - 1)) + 1].to_vec(),
            // A valid frame with one flipped bit.
            2 => {
                let mut b = valid.clone();
                let i = next() as usize % b.len();
                b[i] ^= 1 << (next() % 8);
                b
            }
            // A hostile length prefix: header promises ~4 GiB.
            _ => {
                let mut b = Vec::new();
                b.extend_from_slice(b"MVIF\x01\x01");
                b.extend_from_slice(&0xffff_fff0u32.to_le_bytes());
                b.extend_from_slice(&(next() as u32).to_le_bytes());
                b
            }
        };
        if round % 4 == 2 && bytes == valid {
            bytes[0] ^= 0xff; // ensure the flip actually corrupted something
        }
        if let Ok(mut sock) = TcpStream::connect(addr) {
            let _ = sock.write_all(&bytes);
            // Half the storm slams both directions shut instead of closing
            // cleanly (the drop below is the clean path).
            if next() & 1 == 0 {
                let _ = sock.shutdown(std::net::Shutdown::Both);
            }
        }
    }

    // The storm must be fully absorbed: the acceptor works through the
    // backlog (garbage counted as typed bad-frame closures)...
    assert!(
        wait_for(Duration::from_secs(10), || server.stats().bad_frames >= 10),
        "undecodable frames must be counted: {:?}",
        server.stats()
    );
    // ...the attack connections are reaped down to the one healthy client...
    assert!(
        wait_for(Duration::from_secs(10), || server.stats().active_connections == 1),
        "attack connections must be reaped (got {:?})",
        server.stats()
    );
    // ...no panic reached the supervisor, and the healthy connection still
    // serves identical values.
    assert_eq!(server.panics_caught(), Some(0), "fuzzed frames must never panic the server");
    let after = client.query(0, 0, 60).unwrap();
    assert!(before.iter().zip(&after).all(|(a, b)| a.to_bits() == b.to_bits()));
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Kill mid-stream: ambiguity surfaces, reconnect succeeds
// ---------------------------------------------------------------------------

#[test]
fn killed_server_surfaces_ambiguity_and_the_client_reconnects_through_restart() {
    let eng = engine();
    let server = NetServer::bind("127.0.0.1:0", Arc::clone(&eng), ServerConfig::default()).unwrap();

    let retry = RetryPolicy {
        max_attempts: 40,
        base: Duration::from_millis(25),
        max_delay: Duration::from_millis(100),
        ..RetryPolicy::default()
    };
    let mut client =
        NetClient::new(server.local_addr(), ClientConfig { retry, ..ClientConfig::default() });
    let before = client.query(0, 0, 50).unwrap();

    // Kill (crash-style: no drain). The client's next call dies mid-exchange
    // with an AMBIGUOUS error — in-flight work is never auto-retried, so the
    // failure must surface as Io/ambiguity, not spin in the retry loop.
    server.kill();
    match client.query(0, 0, 50) {
        Err(NetError::Io { .. }) => {}
        // If the OS tore the socket down before the write, the attempt never
        // started — that path retries connect until exhaustion, still typed.
        Err(NetError::Exhausted { last, .. }) => {
            assert!(matches!(*last, NetError::Connect { .. }), "exhausted on {last}")
        }
        Err(NetError::Connect { .. }) => {}
        other => panic!("query against a killed server: {other:?}"),
    }

    // Restart elsewhere (std has no SO_REUSEADDR, so the old port may sit in
    // TIME_WAIT — real restarts move behind a load balancer anyway): reserve
    // a port, point the client at it, and bring the server up AFTER the
    // client has started calling. The connect-refused retry loop must carry
    // the client across the gap.
    let parked = TcpListener::bind("127.0.0.1:0").unwrap();
    let new_addr = parked.local_addr().unwrap();
    drop(parked);
    client.redirect(new_addr);

    let restarted = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(200));
        NetServer::bind(new_addr, eng, ServerConfig::default())
    });
    let after = client.query(0, 0, 50).expect("retry across the restart gap must succeed");
    assert!(before.iter().zip(&after).all(|(a, b)| a.to_bits() == b.to_bits()));

    let server = restarted.join().unwrap().expect("restart must bind the reserved port");
    assert!(server.stats().accepted >= 1);
    server.shutdown();
}
