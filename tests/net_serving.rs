//! End-to-end integration for the network front door (`mvi-net`): a real
//! loopback server over a trained engine, exercised through the blocking
//! client. The happy path must be **transparent** — values served over the
//! wire are bitwise identical to direct engine queries — and the front
//! door's contracts (persistent connections, health surface, admission cap,
//! idle reaping) must hold as configured.
//!
//! The trained model is built once per process; every test restores its own
//! engine from the shared snapshot and binds its own ephemeral-port server.

use deepmvi::{DeepMviConfig, DeepMviModel};
use mvi_data::dataset::ObservedDataset;
use mvi_data::generators::{generate_with_shape, DatasetName};
use mvi_data::scenarios::Scenario;
use mvi_net::{ClientConfig, ErrorCode, NetClient, NetServer, RetryPolicy, ServerConfig};
use mvi_serve::{ImputationEngine, ServeSnapshot};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

const SERIES: usize = 3;
const T_LEN: usize = 120;

struct Fixture {
    obs: ObservedDataset,
    snapshot_json: String,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let ds = generate_with_shape(DatasetName::Electricity, &[SERIES], T_LEN, 17);
        let obs = Scenario::mcar(0.85).apply(&ds, 7).observed();
        let cfg = DeepMviConfig { max_steps: 10, ..DeepMviConfig::tiny() };
        let mut model = DeepMviModel::new(&cfg, &obs);
        model.fit(&obs);
        let snapshot_json = ServeSnapshot::capture(&model, &obs).to_json();
        Fixture { obs, snapshot_json }
    })
}

fn engine() -> Arc<ImputationEngine> {
    let fix = fixture();
    let snap = ServeSnapshot::from_json(&fix.snapshot_json).expect("fixture snapshot parses");
    let frozen = snap.restore(&fix.obs).expect("fixture model restores");
    Arc::new(ImputationEngine::new(frozen, fix.obs.clone()).expect("fixture engine builds"))
}

/// A client that never retries: integration tests assert on first-reply
/// semantics; the fault suite owns the retry drills.
fn no_retry() -> ClientConfig {
    ClientConfig { retry: RetryPolicy::none(), ..ClientConfig::default() }
}

fn wait_until(deadline: Duration, mut ok: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if ok() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    ok()
}

#[test]
fn wire_values_are_bitwise_identical_to_direct_engine_queries() {
    let eng = engine();
    let server = NetServer::bind("127.0.0.1:0", Arc::clone(&eng), ServerConfig::default()).unwrap();
    let mut client = NetClient::new(server.local_addr(), no_retry());

    for (s, start, end) in [(0u32, 0u32, 40u32), (1, 25, 80), (2, 0, T_LEN as u32), (0, 90, 120)] {
        let over_wire = client.query(s, start, end).unwrap();
        let direct = eng.query(s as usize, start as usize, end as usize).unwrap();
        assert_eq!(over_wire.len(), (end - start) as usize);
        assert!(
            over_wire.iter().zip(&direct).all(|(a, b)| a.to_bits() == b.to_bits()),
            "wire values diverged from the engine for ({s}, {start}, {end})"
        );
    }
    server.shutdown();
}

#[test]
fn one_connection_serves_many_requests() {
    let server = NetServer::bind("127.0.0.1:0", engine(), ServerConfig::default()).unwrap();
    let mut client = NetClient::new(server.local_addr(), no_retry());

    for _ in 0..8 {
        assert_eq!(client.query(0, 0, 30).unwrap().len(), 30);
    }
    let stats = server.stats();
    assert_eq!(stats.accepted, 1, "a persistent client must reuse its connection");
    assert_eq!(stats.requests, 8);
    server.shutdown();
}

#[test]
fn bad_requests_come_back_as_typed_wire_errors_on_a_live_connection() {
    let server = NetServer::bind("127.0.0.1:0", engine(), ServerConfig::default()).unwrap();
    let mut client = NetClient::new(server.local_addr(), no_retry());

    // Out-of-range and unknown-series requests map to the Invalid code...
    let err = client.query(0, 50, 10_000).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Invalid), "range error must be typed: {err}");
    let err = client.query(99, 0, 10).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Invalid), "series error must be typed: {err}");
    // ...and the connection survives them: the next good request works.
    assert_eq!(client.query(0, 0, 10).unwrap().len(), 10);
    server.shutdown();
}

#[test]
fn health_frame_reports_engine_and_front_door_state_over_the_wire() {
    let config = ServerConfig::default();
    let queue_cap = config.batcher.queue_cap;
    let server = NetServer::bind("127.0.0.1:0", engine(), config).unwrap();
    let mut client = NetClient::new(server.local_addr(), no_retry());

    client.query(0, 0, 20).unwrap();
    let health = client.health().unwrap();
    assert!(!health.draining);
    assert_eq!(health.panics_caught, 0);
    assert_eq!(health.queue_cap as usize, queue_cap);
    assert_eq!(health.active_connections, 1, "the probing connection itself is active");
    assert_eq!(health.quarantined, 0);
    server.shutdown();
}

#[test]
fn admission_cap_refuses_excess_connections_with_a_typed_overload() {
    let config = ServerConfig { max_connections: 1, ..ServerConfig::default() };
    let retry_after = config.retry_after_ms;
    let server = NetServer::bind("127.0.0.1:0", engine(), config).unwrap();

    // The first client takes the only slot (the connection is established by
    // its first query and then held open)...
    let mut holder = NetClient::new(server.local_addr(), no_retry());
    holder.query(0, 0, 10).unwrap();

    // ...so a second client is refused at the door: typed, with the backoff
    // hint, and marked retryable for the client's retry loop.
    let mut excess = NetClient::new(server.local_addr(), no_retry());
    let err = excess.query(0, 0, 10).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::Overloaded), "refusal must be typed: {err}");
    assert!(err.retryable(), "an admission refusal is safe to retry");
    assert_eq!(err.retry_after(), Some(Duration::from_millis(u64::from(retry_after))));
    assert!(server.stats().rejected >= 1);

    // The holder's connection is untouched by the refusal next door.
    assert_eq!(holder.query(1, 0, 10).unwrap().len(), 10);

    // Once the holder leaves, the slot frees and the excess client gets in.
    drop(holder);
    assert!(
        wait_until(Duration::from_secs(5), || server.stats().active_connections == 0),
        "closed connection must be reaped from the active count"
    );
    assert_eq!(excess.query(0, 0, 10).unwrap().len(), 10);
    server.shutdown();
}

#[test]
fn idle_connections_are_reaped_without_disturbing_active_ones() {
    let config = ServerConfig {
        idle_timeout: Duration::from_millis(150),
        tick: Duration::from_millis(10),
        ..ServerConfig::default()
    };
    let server = NetServer::bind("127.0.0.1:0", engine(), config).unwrap();

    // An idle connection: established by a query, then silent.
    let mut idler = NetClient::new(server.local_addr(), no_retry());
    idler.query(0, 0, 10).unwrap();
    assert_eq!(server.stats().active_connections, 1);

    // The server reaps it well within a few idle windows.
    assert!(
        wait_until(Duration::from_secs(5), || server.stats().active_connections == 0),
        "an idle connection must be reaped, not held forever"
    );

    // A connection that keeps talking is never reaped: each completed frame
    // resets its idle budget.
    let mut active = NetClient::new(server.local_addr(), no_retry());
    for _ in 0..5 {
        assert_eq!(active.query(0, 0, 10).unwrap().len(), 10);
        std::thread::sleep(Duration::from_millis(60));
    }
    server.shutdown();
}
