//! Cross-tenant isolation over the wire: many models behind one front door
//! ([`NetServer::bind_registry`]), routed by the frame-v2 tenant id.
//!
//! The contracts pinned here:
//!
//! * **routing is bitwise** — each tenant's replies are identical to direct
//!   queries against its own model, and distinct models produce distinct
//!   values (so a routing mixup cannot hide);
//! * **isolation is real** — a hostile tenant armed to panic its model and
//!   flooding its own micro-batcher changes nothing about a victim tenant's
//!   replies (proof is progress-gated: panics must actually land first);
//! * **v1 peers still work** — a pre-tenancy client speaks version 1 on the
//!   raw socket and lands on the default tenant;
//! * **registry states cross the wire typed** — unknown, mid-load and full
//!   answer with their own error codes on a connection that stays open, and
//!   the client keeps its cached connection through all three (the drop-set
//!   is exactly overload/shutdown).

use deepmvi::{DeepMviConfig, DeepMviModel};
use mvi_data::dataset::ObservedDataset;
use mvi_data::generators::{generate_with_shape, DatasetName};
use mvi_data::scenarios::Scenario;
use mvi_net::frame::{encode_versioned, read_frame_versioned, V1};
use mvi_net::{
    ClientConfig, ErrorCode, Frame, NetClient, NetServer, RetryPolicy, ServerConfig,
    DEFAULT_MAX_FRAME, DEFAULT_TENANT,
};
use mvi_serve::{ImputationEngine, ModelRegistry, RegistryConfig, ServeSnapshot, ValueGuard};
use std::io::Write;
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier, OnceLock};
use std::time::{Duration, Instant};

const SERIES: usize = 2;
const T_LEN: usize = 80;
const SEEDS: usize = 2;

struct Fixture {
    obs: ObservedDataset,
    snapshot_json: String,
}

fn fixture(seed: usize) -> &'static Fixture {
    static FIX: OnceLock<Vec<OnceLock<Fixture>>> = OnceLock::new();
    let all = FIX.get_or_init(|| (0..SEEDS).map(|_| OnceLock::new()).collect());
    all[seed % SEEDS].get_or_init(|| {
        let ds = generate_with_shape(DatasetName::Electricity, &[SERIES], T_LEN, 41 + seed as u64);
        let obs = Scenario::mcar(0.85).apply(&ds, 13 + seed as u64).observed();
        let cfg = DeepMviConfig { max_steps: 6, ..DeepMviConfig::tiny() };
        let mut model = DeepMviModel::new(&cfg, &obs);
        model.fit(&obs);
        let snapshot_json = ServeSnapshot::capture(&model, &obs).to_json();
        Fixture { obs, snapshot_json }
    })
}

fn engine(seed: usize) -> Arc<ImputationEngine> {
    let fix = fixture(seed);
    let snap = ServeSnapshot::from_json(&fix.snapshot_json).expect("fixture snapshot parses");
    let frozen = snap.restore(&fix.obs).expect("fixture model restores");
    Arc::new(ImputationEngine::new(frozen, fix.obs.clone()).expect("fixture engine builds"))
}

struct SpillDir(PathBuf);

impl SpillDir {
    fn new(tag: &str) -> Self {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        SpillDir(std::env::temp_dir().join(format!("mvi-tenancy-{}-{tag}-{n}", std::process::id())))
    }
}

impl Drop for SpillDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn registry_with(capacity: usize, dir: &SpillDir, tenants: &[(&str, usize)]) -> Arc<ModelRegistry> {
    let reg = Arc::new(ModelRegistry::new(RegistryConfig::new(capacity, &dir.0)));
    for &(name, seed) in tenants {
        reg.register(name, engine(seed)).expect("fixture tenant registers");
    }
    reg
}

fn no_retry() -> ClientConfig {
    ClientConfig { retry: RetryPolicy::none(), ..ClientConfig::default() }
}

fn wait_until(deadline: Duration, mut ok: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if ok() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    ok()
}

fn bitwise_eq(a: &[f64], b: &[f64]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

// ---------------------------------------------------------------------------
// Routing: per-tenant replies are bitwise their own model's
// ---------------------------------------------------------------------------

#[test]
fn tenants_route_to_their_own_models_bitwise() {
    let dir = SpillDir::new("route");
    let reg = registry_with(4, &dir, &[("acme", 0), ("globex", 1)]);
    let server = NetServer::bind_registry("127.0.0.1:0", reg, ServerConfig::default()).unwrap();

    let oracles = [engine(0), engine(1)];
    let mut acme = NetClient::with_tenant(server.local_addr(), "acme", no_retry());
    let mut globex = NetClient::with_tenant(server.local_addr(), "globex", no_retry());

    for (s, start, end) in [(0u32, 0u32, 40u32), (1, 10, T_LEN as u32)] {
        let a = acme.query(s, start, end).unwrap();
        let g = globex.query(s, start, end).unwrap();
        let (sa, sb, se) = (s as usize, start as usize, end as usize);
        assert!(bitwise_eq(&a, &oracles[0].query(sa, sb, se).unwrap()), "acme diverged");
        assert!(bitwise_eq(&g, &oracles[1].query(sa, sb, se).unwrap()), "globex diverged");
        // The two models are trained on differently-seeded data: identical
        // replies would mean the router collapsed the tenants.
        assert!(
            !bitwise_eq(&a, &g),
            "distinct tenants answered identically for ({s},{start},{end})"
        );
    }
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Isolation: a hostile tenant cannot touch a victim's replies
// ---------------------------------------------------------------------------

#[test]
fn hostile_tenant_panics_and_floods_without_perturbing_the_victim() {
    let dir = SpillDir::new("hostile");
    let reg = Arc::new(ModelRegistry::new(RegistryConfig::new(4, &dir.0)));
    reg.register("victim", engine(0)).unwrap();
    // The hostile model is armed: every forward pass panics its worker.
    let mal = engine(1);
    mal.set_eval_hook(Some(Box::new(|_results| panic!("armed hostile model"))));
    reg.register("mallory", mal).unwrap();

    let server = NetServer::bind_registry("127.0.0.1:0", reg, ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    // Baseline: the victim's replies before any hostility.
    let mut victim = NetClient::with_tenant(addr, "victim", no_retry());
    let baseline: Vec<Vec<f64>> =
        (0..SERIES as u32).map(|s| victim.query(s, 0, T_LEN as u32).unwrap()).collect();

    // The storm: two hostile connections hammering the armed model.
    let stop = Arc::new(AtomicBool::new(false));
    let hostiles: Vec<_> = (0..2)
        .map(|_| {
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut client = NetClient::with_tenant(addr, "mallory", no_retry());
                let mut panicked = 0u64;
                while !stop.load(Ordering::Acquire) {
                    match client.query(0, 0, T_LEN as u32) {
                        Err(e) if e.code() == Some(ErrorCode::Panicked) => panicked += 1,
                        _ => {}
                    }
                }
                panicked
            })
        })
        .collect();

    // Progress gate: the drill only proves isolation once panics actually
    // land in mallory's supervisor.
    assert!(
        wait_until(Duration::from_secs(20), || server.panics_caught().unwrap_or(0) >= 3),
        "the armed model must actually panic for the drill to mean anything"
    );

    // Mid-storm, the victim's replies are bitwise the baseline.
    for (s, want) in baseline.iter().enumerate() {
        let got = victim.query(s as u32, 0, T_LEN as u32).unwrap();
        assert!(bitwise_eq(want, &got), "hostile neighbor perturbed victim series {s}");
    }
    let victim_health = server.registry().tenant_health("victim").unwrap();
    assert_eq!(victim_health.poison_recoveries, 0, "victim engine saw the neighbor's panics");

    stop.store(true, Ordering::Release);
    let caught: u64 = hostiles.into_iter().map(|h| h.join().unwrap()).sum();
    assert!(caught >= 3, "hostile clients must have seen their own typed Panicked replies");

    // And after the storm the victim is still bitwise stable.
    let after = victim.query(0, 0, T_LEN as u32).unwrap();
    assert!(bitwise_eq(&baseline[0], &after));
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Back-compat: version-1 peers land on the default tenant
// ---------------------------------------------------------------------------

#[test]
fn v1_clients_decode_and_land_on_the_default_tenant() {
    let dir = SpillDir::new("v1");
    let reg = registry_with(2, &dir, &[(DEFAULT_TENANT, 0), ("other", 1)]);
    let server = NetServer::bind_registry("127.0.0.1:0", reg, ServerConfig::default()).unwrap();
    let oracle = engine(0).query(0, 0, 40).unwrap();

    // A pre-tenancy peer: raw v1 bytes on the socket, no tenant field at all.
    let mut sock = TcpStream::connect(server.local_addr()).unwrap();
    sock.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    let query = Frame::Query { tenant: String::new(), s: 0, start: 0, end: 40 };
    sock.write_all(&encode_versioned(&query, V1)).unwrap();
    let (reply, version) = read_frame_versioned(&mut sock, DEFAULT_MAX_FRAME).unwrap();
    assert_eq!(version, V1, "a v1 request must be answered in v1");
    match reply {
        Frame::Values { tenant, values } => {
            assert_eq!(tenant, "", "v1 replies carry no tenant");
            assert!(bitwise_eq(&values, &oracle), "v1 must route to the default tenant's model");
        }
        other => panic!("expected values, got {other:?}"),
    }

    // The same bytes keep working for health probes.
    sock.write_all(&encode_versioned(&Frame::HealthReq { tenant: String::new() }, V1)).unwrap();
    let (reply, version) = read_frame_versioned(&mut sock, DEFAULT_MAX_FRAME).unwrap();
    assert_eq!(version, V1);
    assert!(matches!(reply, Frame::Health { .. }), "v1 health probe must answer: {reply:?}");
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Typed registry states on a live connection
// ---------------------------------------------------------------------------

#[test]
fn unknown_tenants_get_a_typed_reply_and_the_connection_survives() {
    let dir = SpillDir::new("unknown");
    let reg = registry_with(2, &dir, &[("acme", 0)]);
    let server = NetServer::bind_registry("127.0.0.1:0", reg, ServerConfig::default()).unwrap();

    let mut client = NetClient::with_tenant(server.local_addr(), "nobody", no_retry());
    let err = client.query(0, 0, 10).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::UnknownTenant), "must be typed: {err}");
    assert!(!err.retryable(), "an unknown tenant will not appear by retrying");
    let err = client.health().unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::UnknownTenant), "health too: {err}");

    // The connection survived both errors: retargeting the same client to a
    // real tenant reuses it (the server accepted exactly one socket).
    client.set_tenant("acme");
    assert_eq!(client.query(0, 0, 10).unwrap().len(), 10);
    assert_eq!(server.stats().accepted, 1, "typed errors must not cost the connection");
    server.shutdown();
}

#[test]
fn loading_and_full_cross_the_wire_typed_while_connections_stay_cached() {
    let dir = SpillDir::new("gate");
    std::fs::create_dir_all(&dir.0).unwrap();
    let reg = Arc::new(ModelRegistry::new(RegistryConfig::new(1, &dir.0)));
    reg.register("a", engine(0)).unwrap();
    // `b` starts cold on disk; its first request triggers the gated load.
    let cold = dir.0.join("b.mvisnap");
    engine(1).snapshot_to_path(&cold).unwrap();
    reg.register_spilled("b", &cold).unwrap();

    let release = Arc::new(AtomicBool::new(false));
    let entered = Arc::new(Barrier::new(2));
    let (rel, ent) = (Arc::clone(&release), Arc::clone(&entered));
    reg.set_load_hook(Some(Box::new(move |_| {
        ent.wait();
        while !rel.load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_millis(1));
        }
    })));

    let server =
        NetServer::bind_registry("127.0.0.1:0", Arc::clone(&reg), ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    // The first request for `b` runs the load on its connection thread and
    // parks in the hook — with capacity 1 the load's slot evicted `a`.
    let loader =
        std::thread::spawn(move || NetClient::with_tenant(addr, "b", no_retry()).query(0, 0, 10));
    entered.wait();
    assert_eq!(reg.stats().loading, 1);

    // A second client racing `b`'s load: typed, retryable, connection kept.
    let mut racer = NetClient::with_tenant(addr, "b", no_retry());
    let err = racer.query(0, 0, 10).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::TenantLoading), "must be typed: {err}");
    assert!(err.retryable(), "a mid-load tenant is safe to retry");
    assert!(err.retry_after().is_some(), "loading replies carry the backoff hint");

    // `a` was evicted for the load and cannot reload while the only slot is
    // pinned: that is the full signal, typed and not blindly retryable.
    let mut evicted = NetClient::with_tenant(addr, "a", no_retry());
    let err = evicted.query(0, 0, 10).unwrap_err();
    assert_eq!(err.code(), Some(ErrorCode::RegistryFull), "must be typed: {err}");
    assert!(!err.retryable(), "full is a capacity decision, not a transient");

    release.store(true, Ordering::Release);
    reg.set_load_hook(None);
    assert_eq!(loader.join().unwrap().unwrap().len(), 10, "the gated load must complete");

    // Both refused clients proceed on their cached connections once the
    // load lands (the hygiene contract: the drop-set is overload/shutdown
    // only, so three clients means exactly three accepted sockets).
    assert_eq!(racer.query(0, 0, 10).unwrap().len(), 10);
    assert_eq!(evicted.query(0, 0, 10).unwrap().len(), 10);
    assert_eq!(
        server.stats().accepted,
        3,
        "typed loading/full replies must not cost anyone their connection"
    );
    server.shutdown();
}

// ---------------------------------------------------------------------------
// Health: per-tenant and aggregate views over the wire
// ---------------------------------------------------------------------------

#[test]
fn health_frames_are_per_tenant_with_an_aggregate_default_view() {
    let dir = SpillDir::new("health");
    let (a, b) = (engine(0), engine(1));
    for (eng, spikes) in [(&a, 3u64), (&b, 5u64)] {
        eng.set_value_guard(Some(ValueGuard { abs_max: Some(100.0), max_jump: None }));
        for _ in 0..spikes {
            eng.append(0, &[1.0, 5000.0, 2.0]).unwrap();
        }
    }
    let reg = Arc::new(ModelRegistry::new(RegistryConfig::new(4, &dir.0)));
    reg.register("acme", a).unwrap();
    reg.register("globex", b).unwrap();
    let server = NetServer::bind_registry("127.0.0.1:0", reg, ServerConfig::default()).unwrap();
    let addr = server.local_addr();

    let mut acme = NetClient::with_tenant(addr, "acme", no_retry());
    let mut globex = NetClient::with_tenant(addr, "globex", no_retry());
    let mut wildcard = NetClient::new(addr, no_retry());

    assert_eq!(acme.health().unwrap().quarantined, 3, "acme sees only its own counters");
    assert_eq!(globex.health().unwrap().quarantined, 5, "globex sees only its own counters");
    let whole = wildcard.health().unwrap();
    assert_eq!(whole.quarantined, 8, "the default view aggregates every tenant");
    assert_eq!(whole.active_connections, 3);
    assert!(!whole.draining);
    server.shutdown();
}
