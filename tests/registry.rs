//! Contract suite for the multi-model tenancy registry
//! ([`mvi_serve::ModelRegistry`]): capacity-bounded LRU residency, lossless
//! evict→reload via the durable snapshot path, carried health/stats counters
//! that survive eviction, typed failure for unknown / mid-load / full states,
//! and bitwise isolation between tenants under concurrent eviction pressure.
//!
//! Each seed gets its own trained model (built once per process); tenants
//! restore fresh engines from that snapshot, so an oracle engine restored
//! from the same JSON answers bitwise-identically to the registry's copy.

use deepmvi::{DeepMviConfig, DeepMviModel};
use mvi_data::dataset::ObservedDataset;
use mvi_data::generators::{generate_with_shape, DatasetName};
use mvi_data::scenarios::Scenario;
use mvi_serve::{
    ImputationEngine, ModelRegistry, RegistryConfig, ServeError, ServeSnapshot, ValueGuard,
};
use proptest::{prop_assert, prop_assert_eq, proptest, ProptestConfig};
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex, OnceLock};
use std::time::{Duration, Instant};

const SERIES: usize = 2;
const T_LEN: usize = 80;
const SEEDS: usize = 3;

struct Fixture {
    obs: ObservedDataset,
    snapshot_json: String,
}

/// One trained model per seed, built lazily and shared process-wide.
fn fixture(seed: usize) -> &'static Fixture {
    static FIX: OnceLock<Vec<OnceLock<Fixture>>> = OnceLock::new();
    let all = FIX.get_or_init(|| (0..SEEDS).map(|_| OnceLock::new()).collect());
    all[seed % SEEDS].get_or_init(|| {
        let ds = generate_with_shape(DatasetName::Electricity, &[SERIES], T_LEN, 23 + seed as u64);
        let obs = Scenario::mcar(0.85).apply(&ds, 11 + seed as u64).observed();
        let cfg = DeepMviConfig { max_steps: 6, ..DeepMviConfig::tiny() };
        let mut model = DeepMviModel::new(&cfg, &obs);
        model.fit(&obs);
        let snapshot_json = ServeSnapshot::capture(&model, &obs).to_json();
        Fixture { obs, snapshot_json }
    })
}

fn engine(seed: usize) -> Arc<ImputationEngine> {
    let fix = fixture(seed);
    let snap = ServeSnapshot::from_json(&fix.snapshot_json).expect("fixture snapshot parses");
    let frozen = snap.restore(&fix.obs).expect("fixture model restores");
    Arc::new(ImputationEngine::new(frozen, fix.obs.clone()).expect("fixture engine builds"))
}

/// A unique scratch spill directory per call, removed when the guard drops.
struct SpillDir(PathBuf);

impl SpillDir {
    fn new(tag: &str) -> Self {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let n = SEQ.fetch_add(1, Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("mvi-registry-{}-{tag}-{n}", std::process::id()));
        SpillDir(dir)
    }

    fn path(&self) -> &PathBuf {
        &self.0
    }
}

impl Drop for SpillDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn registry(capacity: usize, dir: &SpillDir) -> ModelRegistry {
    ModelRegistry::new(RegistryConfig::new(capacity, dir.path()))
}

fn wait_until(deadline: Duration, mut ok: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if ok() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    ok()
}

// ---------------------------------------------------------------------------
// Residency lifecycle: LRU order, lossless reload
// ---------------------------------------------------------------------------

#[test]
fn eviction_picks_the_least_recently_used_and_reload_is_bitwise_identical() {
    let dir = SpillDir::new("lru");
    let reg = registry(2, &dir);
    reg.register("a", engine(0)).unwrap();
    reg.register("b", engine(1)).unwrap();

    // Touch `a` so `b` becomes the LRU victim, then record b's answers.
    reg.get("a").unwrap();
    let oracle: Vec<f64> = reg.get("b").unwrap().query(0, 0, T_LEN).unwrap();
    reg.get("a").unwrap(); // `a` is most recent again

    // A third tenant forces an eviction: `b` (least recent) spills to disk.
    reg.register("c", engine(2)).unwrap();
    let stats = reg.stats();
    assert_eq!(stats.evictions, 1);
    assert_eq!((stats.resident, stats.spilled), (2, 1));
    assert!(reg.contains("b"), "an evicted tenant stays registered");
    assert_eq!(reg.tenants(), vec!["a".to_string(), "b".into(), "c".into()]);

    // Reloading `b` evicts the new LRU (`a`) and answers bitwise-identically.
    let reloaded = reg.get("b").unwrap().query(0, 0, T_LEN).unwrap();
    assert!(
        oracle.iter().zip(&reloaded).all(|(x, y)| x.to_bits() == y.to_bits()),
        "evict→reload must be lossless"
    );
    let stats = reg.stats();
    assert_eq!((stats.loads, stats.evictions), (1, 2));
    assert!(stats.resident <= 2, "capacity bound violated");
}

#[test]
fn capacity_zero_admits_nothing_and_says_so() {
    let dir = SpillDir::new("cap0");
    let reg = registry(0, &dir);
    match reg.register("a", engine(0)) {
        Err(ServeError::RegistryFull { capacity: 0 }) => {}
        other => panic!("capacity-0 register must be RegistryFull: {other:?}"),
    }
    match reg.get("a").map(|_| ()) {
        Err(ServeError::UnknownTenant { tenant }) => assert_eq!(tenant, "a"),
        other => panic!("unregistered get must be UnknownTenant: {other:?}"),
    }
    assert!(reg.is_empty());
}

#[test]
fn register_spilled_requires_a_real_file_and_loads_on_first_get() {
    let dir = SpillDir::new("spilled");
    let reg = registry(1, &dir);

    match reg.register_spilled("ghost", dir.path().join("missing.mvisnap")) {
        Err(ServeError::Snapshot(msg)) => assert!(msg.contains("ghost"), "names tenant: {msg}"),
        other => panic!("missing snapshot must be typed: {other:?}"),
    }

    // A real snapshot registers cold and loads lazily.
    std::fs::create_dir_all(dir.path()).unwrap();
    let source = engine(0);
    let oracle = source.query(1, 10, 60).unwrap();
    let path = dir.path().join("cold.mvisnap");
    source.snapshot_to_path(&path).unwrap();
    reg.register_spilled("cold", &path).unwrap();
    let stats = reg.stats();
    assert_eq!((stats.resident, stats.spilled, stats.loads), (0, 1, 0));

    let loaded = reg.get("cold").unwrap().query(1, 10, 60).unwrap();
    assert!(oracle.iter().zip(&loaded).all(|(x, y)| x.to_bits() == y.to_bits()));
    assert_eq!(reg.stats().loads, 1);

    // A corrupt snapshot is a typed load failure and the tenant stays
    // spilled, ready for a retry once the file is fixed.
    let bad = dir.path().join("bad.mvisnap");
    std::fs::write(&bad, b"not a snapshot").unwrap();
    reg.register_spilled("corrupt", &bad).unwrap();
    assert!(reg.get("corrupt").is_err());
    let stats = reg.stats();
    assert_eq!(stats.load_failures, 1);
    assert_eq!(stats.spilled, 2, "a failed load releases the slot back to spilled");
}

// ---------------------------------------------------------------------------
// Typed loading/full states, held open deterministically by the load hook
// ---------------------------------------------------------------------------

#[test]
fn in_flight_loads_pin_their_slot_and_answer_loading_and_full_typed() {
    let dir = SpillDir::new("gate");
    let reg = Arc::new(registry(1, &dir));
    reg.register("a", engine(0)).unwrap();
    reg.evict("a").unwrap();

    // Gate the load: the loader thread parks inside the hook with the slot
    // in the loading state until we release it.
    let release = Arc::new(AtomicBool::new(false));
    let entered = Arc::new(Barrier::new(2));
    let (rel, ent) = (Arc::clone(&release), Arc::clone(&entered));
    reg.set_load_hook(Some(Box::new(move |_| {
        ent.wait();
        while !rel.load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_millis(1));
        }
    })));

    let loader = {
        let reg = Arc::clone(&reg);
        std::thread::spawn(move || reg.get("a").map(|_| ()))
    };
    entered.wait();
    assert_eq!(reg.stats().loading, 1);

    // Racing the load is answered typed-and-retryable, not blocked.
    match reg.get("a").map(|_| ()) {
        Err(ServeError::TenantLoading { tenant }) => assert_eq!(tenant, "a"),
        other => panic!("a racing get must see TenantLoading: {other:?}"),
    }
    // The loading slot is pinned: nothing is evictable, so a second tenant
    // cannot take a residency slot while the only one is mid-load.
    match reg.register("b", engine(1)) {
        Err(ServeError::RegistryFull { capacity: 1 }) => {}
        other => panic!("a pinned load must make register RegistryFull: {other:?}"),
    }
    match reg.evict("a") {
        Err(ServeError::TenantLoading { .. }) => {}
        other => panic!("evicting a loading slot must be typed: {other:?}"),
    }

    release.store(true, Ordering::Release);
    loader.join().unwrap().unwrap();
    reg.set_load_hook(None);

    // Once the load lands everything unblocks: `a` is a warm hit and `b`
    // registers by evicting it.
    reg.get("a").unwrap();
    reg.register("b", engine(1)).unwrap();
    assert_eq!(reg.stats().resident, 1);
    assert!(wait_until(Duration::from_secs(1), || reg.stats().loading == 0));
}

// ---------------------------------------------------------------------------
// Carried counters: health history survives eviction
// ---------------------------------------------------------------------------

#[test]
fn aggregate_health_sums_carried_and_live_counters_across_tenants() {
    let dir = SpillDir::new("agg");
    let reg = registry(2, &dir);
    let (a, b) = (engine(0), engine(1));
    a.set_value_guard(Some(ValueGuard { abs_max: Some(100.0), max_jump: None }));
    b.set_value_guard(Some(ValueGuard { abs_max: Some(100.0), max_jump: None }));
    for _ in 0..3 {
        a.append(0, &[1.0, 5000.0, 2.0]).unwrap(); // 3 quarantined on `a`
    }
    for _ in 0..5 {
        b.append(1, &[1.0, 5000.0, 2.0]).unwrap(); // 5 quarantined on `b`
    }
    reg.register("a", a).unwrap();
    reg.register("b", b).unwrap();

    assert_eq!(reg.tenant_health("a").unwrap().quarantined, 3);
    assert_eq!(reg.tenant_health("b").unwrap().quarantined, 5);
    assert_eq!(reg.aggregate_health().quarantined, 8);

    // Evicting `a` folds its counters into the carried totals: per-tenant
    // and aggregate views are unchanged by where the engine lives.
    reg.evict("a").unwrap();
    assert_eq!(reg.tenant_health("a").unwrap().quarantined, 3);
    assert_eq!(reg.aggregate_health().quarantined, 8);
    match reg.tenant_health("nope") {
        Err(ServeError::UnknownTenant { .. }) => {}
        other => panic!("unknown tenant health must be typed: {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Property: LRU bookkeeping vs a shadow model
// ---------------------------------------------------------------------------

/// What the registry should look like after a sequence of operations,
/// tracked independently with plain lists.
#[derive(Default)]
struct Shadow {
    /// Resident tenants, least-recently-used first.
    recency: Vec<String>,
    /// Every id ever registered.
    registered: Vec<String>,
    evictions: u64,
    loads: u64,
}

impl Shadow {
    fn touch(&mut self, tenant: &str) {
        self.recency.retain(|t| t != tenant);
        self.recency.push(tenant.to_string());
    }

    fn make_room(&mut self, capacity: usize) -> bool {
        while self.recency.len() >= capacity {
            if self.recency.is_empty() {
                return false;
            }
            self.recency.remove(0);
            self.evictions += 1;
        }
        true
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random register/get/evict sequences: residency never exceeds
    /// capacity, the eviction/load/hit counters match an independent shadow
    /// model exactly, and every registered tenant stays servable.
    #[test]
    fn lru_bookkeeping_matches_a_shadow_model(
        capacity in 1usize..=3,
        ops in proptest::collection::vec((0u32..3, 0usize..4), 1..24),
    ) {
        let dir = SpillDir::new("prop-lru");
        let reg = registry(capacity, &dir);
        let mut shadow = Shadow::default();
        for (op, t) in ops {
            let tenant = format!("tenant-{t}");
            match op {
                // register: evicts LRU residents until a slot frees.
                0 => {
                    let replacing_resident = shadow.recency.contains(&tenant);
                    if !replacing_resident && !shadow.make_room(capacity) {
                        prop_assert!(reg.register(&tenant, engine(t)).is_err());
                        continue;
                    }
                    reg.register(&tenant, engine(t)).map_err(|e| e.to_string())?;
                    shadow.touch(&tenant);
                    if !shadow.registered.contains(&tenant) {
                        shadow.registered.push(tenant.clone());
                    }
                }
                // get: warm hit bumps recency, spilled loads (evicting LRU),
                // unknown is typed.
                1 => {
                    if !shadow.registered.contains(&tenant) {
                        match reg.get(&tenant).map(|_| ()) {
                            Err(ServeError::UnknownTenant { tenant: got }) => {
                                prop_assert_eq!(got, tenant);
                            }
                            other => {
                                return Err(format!("expected UnknownTenant: {other:?}").into())
                            }
                        }
                        continue;
                    }
                    let was_resident = shadow.recency.contains(&tenant);
                    if !was_resident {
                        prop_assert!(shadow.make_room(capacity), "capacity >= 1");
                        shadow.loads += 1;
                    }
                    reg.get(&tenant).map_err(|e| e.to_string())?;
                    shadow.touch(&tenant);
                }
                // evict: resident spills (idempotent on spilled), unknown typed.
                _ => {
                    if !shadow.registered.contains(&tenant) {
                        prop_assert!(matches!(
                            reg.evict(&tenant),
                            Err(ServeError::UnknownTenant { .. })
                        ));
                        continue;
                    }
                    reg.evict(&tenant).map_err(|e| e.to_string())?;
                    if shadow.recency.contains(&tenant) {
                        shadow.recency.retain(|x| *x != tenant);
                        shadow.evictions += 1;
                    }
                }
            }
            let stats = reg.stats();
            prop_assert!(stats.resident <= capacity, "resident {} > cap", stats.resident);
            prop_assert_eq!(stats.resident, shadow.recency.len());
            prop_assert_eq!(stats.evictions, shadow.evictions);
            prop_assert_eq!(stats.loads, shadow.loads);
            prop_assert_eq!(stats.registered, shadow.registered.len() as u64);
        }
        // Every tenant that ever registered is still servable: a get either
        // answers warm or reloads its spilled snapshot.
        for tenant in &shadow.registered {
            let eng = reg.get(tenant).map_err(|e| e.to_string())?;
            prop_assert!(eng.query(0, 0, 10).is_ok());
        }
    }

    /// Evict→reload round-trips are bitwise lossless for served values and
    /// preserve every monotonic health/stats counter exactly (the
    /// `degraded_windows` gauge is live-state and deliberately excluded).
    #[test]
    fn evict_reload_preserves_values_and_counters_bitwise(
        seed in 0usize..SEEDS,
        spikes in 1usize..5,
        cycles in 1usize..3,
    ) {
        let dir = SpillDir::new("prop-roundtrip");
        let reg = registry(1, &dir);
        let eng = engine(seed);
        eng.set_value_guard(Some(ValueGuard { abs_max: Some(100.0), max_jump: None }));
        for _ in 0..spikes {
            for s in 0..SERIES {
                eng.append(s, &[1.0, 5000.0, 2.0]).map_err(|e| e.to_string())?;
            }
        }
        let live_len = eng.live_len();
        reg.register("t", eng).map_err(|e| e.to_string())?;

        let handle = reg.get("t").map_err(|e| e.to_string())?;
        let oracle: Vec<Vec<f64>> = (0..SERIES)
            .map(|s| handle.query(s, 0, live_len))
            .collect::<Result<_, _>>()
            .map_err(|e| e.to_string())?;
        drop(handle);
        prop_assert_eq!(
            reg.tenant_health("t").map_err(|e| e.to_string())?.quarantined,
            (spikes * SERIES) as u64
        );

        for cycle in 0..cycles {
            // The bitwise probe itself advances live counters, so the
            // preserved-exactly baseline is re-read at the top of each hop.
            let health_before = reg.tenant_health("t").map_err(|e| e.to_string())?;
            let stats_before = reg.tenant_stats("t").map_err(|e| e.to_string())?;
            reg.evict("t").map_err(|e| e.to_string())?;

            // Counters are indifferent to residency: spilled reports carried.
            let mut spilled_health = reg.tenant_health("t").map_err(|e| e.to_string())?;
            spilled_health.degraded_windows = health_before.degraded_windows;
            prop_assert!(spilled_health == health_before, "carried health lost on cycle {cycle}");

            let reloaded = reg.get("t").map_err(|e| e.to_string())?;
            let mut health_after = reg.tenant_health("t").map_err(|e| e.to_string())?;
            health_after.degraded_windows = health_before.degraded_windows;
            prop_assert!(health_after == health_before, "health diverged after reload {cycle}");
            let stats_after = reg.tenant_stats("t").map_err(|e| e.to_string())?;
            prop_assert!(stats_after == stats_before, "stats diverged after reload {cycle}");

            for (s, want) in oracle.iter().enumerate() {
                let got = reloaded.query(s, 0, live_len).map_err(|e| e.to_string())?;
                prop_assert!(
                    want.iter().zip(&got).all(|(x, y)| x.to_bits() == y.to_bits()),
                    "series {} diverged after evict→reload cycle {}", s, cycle
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Concurrency: tenants stay bitwise-isolated under eviction pressure
// ---------------------------------------------------------------------------

#[test]
fn concurrent_tenants_stay_bitwise_correct_under_eviction_pressure() {
    let dir = SpillDir::new("stress");
    let reg = Arc::new(registry(2, &dir));
    let names = ["alpha", "beta", "gamma"];
    let mut oracles: HashMap<&str, Vec<Vec<f64>>> = HashMap::new();
    for (seed, name) in names.iter().enumerate() {
        let oracle = engine(seed);
        oracles.insert(name, (0..SERIES).map(|s| oracle.query(s, 0, T_LEN).unwrap()).collect());
        reg.register(name, engine(seed)).unwrap();
    }

    let errors: Mutex<Vec<String>> = Mutex::new(Vec::new());
    let stop = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let (reg, errors, stop, oracles) = (&reg, &errors, &stop, &oracles);
        // Three tenants querying concurrently, each against its own oracle —
        // a capacity-2 registry guarantees constant churn.
        let workers: Vec<_> = names
            .iter()
            .map(|name| {
                scope.spawn(move || {
                    let mut rng: u64 = 0x9e37 ^ name.len() as u64;
                    for round in 0..30 {
                        rng ^= rng << 13;
                        rng ^= rng >> 7;
                        rng ^= rng << 17;
                        let s = (rng as usize) % SERIES;
                        // Loading/full are retryable contracts, not failures.
                        let eng = loop {
                            match reg.get(name) {
                                Ok(eng) => break Some(eng),
                                Err(
                                    ServeError::TenantLoading { .. }
                                    | ServeError::RegistryFull { .. },
                                ) => std::thread::sleep(Duration::from_millis(1)),
                                Err(e) => {
                                    errors
                                        .lock()
                                        .unwrap()
                                        .push(format!("{name} round {round}: {e}"));
                                    break None;
                                }
                            }
                        };
                        let Some(eng) = eng else { return };
                        match eng.query(s, 0, T_LEN) {
                            Ok(got) => {
                                let want = &oracles[name][s];
                                if !want.iter().zip(&got).all(|(x, y)| x.to_bits() == y.to_bits()) {
                                    errors.lock().unwrap().push(format!(
                                        "{name} series {s} diverged on round {round}"
                                    ));
                                    return;
                                }
                            }
                            Err(e) => {
                                errors.lock().unwrap().push(format!("{name} query {round}: {e}"));
                                return;
                            }
                        }
                    }
                })
            })
            .collect();
        // An evictor thread churns residency the whole time.
        let evictor = scope.spawn(move || {
            let mut i = 0usize;
            while !stop.load(Ordering::Acquire) {
                let _ = reg.evict(names[i % names.len()]);
                i += 1;
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        for w in workers {
            w.join().unwrap();
        }
        stop.store(true, Ordering::Release);
        evictor.join().unwrap();
    });
    let errors = errors.into_inner().unwrap();
    assert!(errors.is_empty(), "cross-tenant corruption or lost service:\n{}", errors.join("\n"));

    let stats = reg.stats();
    assert!(stats.resident <= 2, "capacity bound violated under stress");
    assert!(stats.evictions >= 1 && stats.loads >= 1, "the stress must actually churn: {stats:?}");
    for name in names {
        assert!(reg.get(name).is_ok(), "every tenant must remain servable after the storm");
    }
}
