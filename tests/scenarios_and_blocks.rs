//! Cross-crate invariants tying the scenario generators (mvi-data) to the
//! synthetic-training-block machinery DeepMVI builds on them (§3): the sampled
//! training shapes must be identically distributed to the real missing pattern.

use deepmvi_suite::data::blocks::BlockSampler;
use deepmvi_suite::data::generators::{generate_with_shape, DatasetName};
use deepmvi_suite::data::scenarios::Scenario;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn sampler_shape_distribution_tracks_each_scenario() {
    let ds = generate_with_shape(DatasetName::Gas, &[8], 400, 2);
    let mut rng = StdRng::seed_from_u64(1);

    // MCAR: blocks of 10, each typically alone at its time slice.
    let mcar = Scenario::mcar(1.0).apply(&ds, 3);
    let s = BlockSampler::from_observed(&mcar.observed());
    let mut multi_series = 0;
    for _ in 0..100 {
        let b = s.sample(&mut rng);
        assert_eq!(b.t_len % 10, 0);
        if b.dim_counts[0] > 2 {
            multi_series += 1;
        }
    }
    assert!(multi_series < 30, "MCAR blocks should rarely align across many series");

    // Blackout: every sampled block spans all series.
    let blackout = Scenario::Blackout { block_len: 25 }.apply(&ds, 3);
    let s = BlockSampler::from_observed(&blackout.observed());
    for _ in 0..20 {
        let b = s.sample(&mut rng);
        assert_eq!(b.t_len, 25);
        assert_eq!(b.dim_counts[0], 8);
    }

    // MissDisj: exactly one series per block.
    let disj = Scenario::MissDisj.apply(&ds, 3);
    let s = BlockSampler::from_observed(&disj.observed());
    for _ in 0..20 {
        let b = s.sample(&mut rng);
        assert_eq!(b.dim_counts[0], 1, "MissDisj blocks never overlap across series");
    }

    // MissOver: consecutive series overlap, so blocks see 2 members missing.
    let over = Scenario::MissOver.apply(&ds, 3);
    let s = BlockSampler::from_observed(&over.observed());
    let mut overlapping = 0;
    for _ in 0..50 {
        if s.sample(&mut rng).dim_counts[0] >= 2 {
            overlapping += 1;
        }
    }
    assert!(overlapping > 25, "MissOver should mostly sample overlapping shapes");
}

#[test]
fn multidim_scenarios_respect_tensor_layout() {
    let ds = generate_with_shape(DatasetName::JanataHack, &[6, 5], 130, 7);
    for scenario in [Scenario::mcar(0.5), Scenario::MissDisj, Scenario::Blackout { block_len: 10 }]
    {
        let inst = scenario.apply(&ds, 11);
        assert_eq!(inst.missing.shape(), ds.values.shape());
        // Fraction sanity: nothing fully missing, something missing.
        let frac = inst.missing_fraction();
        assert!(frac > 0.0 && frac < 0.6, "{scenario:?}: {frac}");
        let obs = inst.observed();
        // Sibling enumeration agrees between Dataset and ObservedDataset.
        for s in [0usize, 7, 13] {
            for dim in 0..2 {
                assert_eq!(ds.siblings(s, dim), obs.siblings(s, dim));
            }
        }
    }
}

#[test]
fn observed_view_is_consistent_with_mask() {
    for name in [DatasetName::Climate, DatasetName::M5] {
        let ds = generate_with_shape(name, &ds_dims(name), 200, 9);
        let inst = Scenario::mcar(1.0).apply(&ds, 13);
        let obs = inst.observed();
        for i in 0..obs.values.len() {
            if obs.available.at(i) {
                assert_eq!(obs.values.at(i), ds.values.at(i));
            } else {
                assert_eq!(obs.values.at(i), 0.0);
            }
        }
    }
}

fn ds_dims(name: DatasetName) -> Vec<usize> {
    match name.paper_shape().0.len() {
        1 => vec![5],
        _ => vec![4, 6],
    }
}
