//! Concurrency stress + linearizability suite for the sharded serving
//! engine (PR 7): N-thread mixed append/query/fill_range traffic against
//! the lock-free warm read path, checked against sequential oracles.
//!
//! What is proven here:
//!
//! * **Linearizability of the warm path** — every committed read must equal
//!   some linearized order's result. Concretely: values a completed append
//!   wrote are visible to every read that starts afterwards (writers
//!   publish their committed watermark *after* `append` returns; readers
//!   sample it *before* querying), originally-observed values pass through
//!   verbatim forever, a committed backfill is visible atomically (all of
//!   it or none of it) and never "un-happens" for a reader that saw it.
//! * **Sequential-oracle equivalence at quiescence** — after all writers
//!   join, the engine's healed cache equals `FrozenModel::impute` over the
//!   final observed state (the same oracle the single-threaded suites use).
//! * **Bitwise replay determinism** — the sharded engine (warm reads on)
//!   replays any recorded operation log bitwise-identically to the
//!   single-lock engine (warm reads off) at one thread.
//! * **Fault isolation across shards** — a panicking evaluator triggered
//!   through series on shard A neither stalls nor corrupts reads of series
//!   on shards B..N, and poison recovery is counted exactly once.
//! * **Point-in-time health aggregation** — under parallel quarantine
//!   traffic, every `health()` report satisfies the sum invariant
//!   `quarantined == Σ quarantined_by_series`, and final counts are exact
//!   and invariant under the shard count.
//!
//! Seeded schedules: iteration counts scale with `MVI_STRESS_READS` (reads
//! per reader thread; default 50). The defaults run 600+ oracle-checked
//! reads across the seeds — the 500+ iteration floor of the PR-7
//! acceptance criteria. The low-level schedule-permutation smoke over the
//! publish/load handoff itself lives in `mvi-serve`'s unit tests
//! (`published_cell_survives_permuted_schedules`, scaled by
//! `MVI_SCHED_PERMUTATIONS`).

use deepmvi::{DeepMviConfig, DeepMviModel};
use mvi_data::dataset::ObservedDataset;
use mvi_data::generators::{generate_with_shape, DatasetName};
use mvi_data::scenarios::Scenario;
use mvi_serve::{EngineOptions, ImputationEngine, ServeSnapshot, ValueGuard};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

const SERIES: usize = 6;
const T_LEN: usize = 120;
/// The hidden interior gap every series starts with: backfill territory.
const GAP: (usize, usize) = (60, 70);
/// The distinctive constant backfills write — model imputations never land
/// on it exactly, so a reader can tell "filled" from "imputed".
const FILL_VALUE: f64 = 7.77;

struct Fixture {
    obs: ObservedDataset,
    snapshot_json: String,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let ds = generate_with_shape(DatasetName::Chlorine, &[SERIES], T_LEN, 13);
        let mut obs = Scenario::mcar(1.0).apply(&ds, 7).observed();
        // A hidden interior gap with an observed tail in every series: the
        // watermark starts at the series end, so the gap is reachable only
        // through `fill_range` — the backfill leg of the mixed traffic.
        for s in 0..SERIES {
            obs.hide_range(s, GAP.0, GAP.1);
            obs.record_range(s, T_LEN - 2, &[0.5, 0.25]);
        }
        let cfg = DeepMviConfig { max_steps: 8, ..DeepMviConfig::tiny() };
        let mut model = DeepMviModel::new(&cfg, &obs);
        model.fit(&obs);
        let snapshot_json = ServeSnapshot::capture(&model, &obs).to_json();
        Fixture { obs, snapshot_json }
    })
}

fn engine_with(options: EngineOptions) -> ImputationEngine {
    let fix = fixture();
    let snap = ServeSnapshot::from_json(&fix.snapshot_json).expect("fixture snapshot parses");
    let frozen = snap.restore(&fix.obs).expect("fixture model restores");
    ImputationEngine::with_options(frozen, fix.obs.clone(), options).expect("engine builds")
}

fn engine() -> ImputationEngine {
    engine_with(EngineOptions::default())
}

/// Reads per reader thread (`MVI_STRESS_READS`, default 50).
fn reads_per_thread() -> usize {
    std::env::var("MVI_STRESS_READS").ok().and_then(|v| v.parse().ok()).unwrap_or(50)
}

/// The deterministic stream each writer appends: a pure function of
/// `(series, offset past the initial watermark)` so any reader can check
/// any committed prefix without coordination.
fn stream_val(s: usize, k: usize) -> f64 {
    (((s * 1000 + k) as f64) / 17.0).sin()
}

/// Tiny deterministic LCG for seeded schedules.
struct Lcg(u64);
impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        self.0 >> 33
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

/// Shared commit journal for the linearizability check: writers publish
/// facts *after* the mutation returns; readers sample *before* querying.
/// Anything published-before-read-start must be visible in the answer.
struct Journal {
    /// Per series: highest watermark a *returned* append reached.
    committed_wm: Vec<AtomicUsize>,
    /// Per series: whether a gap backfill has committed.
    gap_filled: Vec<AtomicBool>,
}

impl Journal {
    fn new(initial_wm: Vec<usize>) -> Self {
        Self {
            committed_wm: initial_wm.into_iter().map(AtomicUsize::new).collect(),
            gap_filled: (0..SERIES).map(|_| AtomicBool::new(false)).collect(),
        }
    }
}

/// One oracle-checked read of series `s` over `[a, b)`: asserts every
/// deterministic fact the linearization order implies. `init_wm` is the
/// series' watermark at engine construction (stream offsets count from
/// there); `obs` is the original observed state (pass-through positions).
#[allow(clippy::too_many_arguments)]
fn checked_read(
    eng: &ImputationEngine,
    obs: &ObservedDataset,
    journal: &Journal,
    init_wm: &[usize],
    s: usize,
    a: usize,
    b: usize,
    saw_fill: &mut bool,
) {
    let fill_committed_before = journal.gap_filled[s].load(Ordering::SeqCst);
    let resp = eng.query_flagged(s, a, b).expect("committed-range read failed");
    assert!(!resp.degraded, "no faults injected, nothing may degrade");
    assert_eq!(resp.values.len(), b - a);
    let avail = obs.available.series(s);
    let orig = obs.values.series(s);
    for (off, &v) in resp.values.iter().enumerate() {
        let t = a + off;
        assert!(v.is_finite(), "series {s} t={t}: non-finite served value");
        if t >= init_wm[s] {
            // Committed stream suffix: the read started after the append
            // covering `t` returned, so the exact stream value is required.
            assert_eq!(
                v,
                stream_val(s, t - init_wm[s]),
                "series {s} t={t}: committed append not visible"
            );
        } else if (GAP.0..GAP.1).contains(&t) {
            let filled = v == FILL_VALUE;
            if fill_committed_before || *saw_fill {
                assert!(
                    filled,
                    "series {s} t={t}: committed backfill not visible (or un-happened)"
                );
            }
            if filled {
                *saw_fill = true;
            }
        } else if t < T_LEN && avail[t] {
            assert_eq!(v, orig[t], "series {s} t={t}: observed value not served verbatim");
        }
    }
}

/// After all writers join: heal everything lazily, then the cache must
/// equal a batch re-impute of the final observed state — the sequential
/// oracle (the state any linearized order of the same mutations produces).
fn assert_quiescent_oracle(eng: &ImputationEngine) {
    let live = eng.live_len();
    for s in 0..SERIES {
        eng.query(s, 0, live).expect("healing sweep failed");
    }
    let healed = eng.cached_values();
    let oracle = eng.model().impute(&eng.observed());
    assert_eq!(healed.shape(), oracle.shape());
    for (i, (a, b)) in healed.data().iter().zip(oracle.data()).enumerate() {
        assert!(
            (a - b).abs() < 1e-9,
            "flat index {i}: healed cache {a} diverged from sequential oracle {b}"
        );
    }
}

// ---------------------------------------------------------------------------
// Tentpole stress: mixed append / query / fill_range traffic
// ---------------------------------------------------------------------------

#[test]
fn stress_mixed_traffic_respects_linearizability() {
    let fix = fixture();
    let n_readers = 4;
    let reads = reads_per_thread();
    for seed in [11u64, 29, 47] {
        let eng = Arc::new(engine());
        assert!(eng.warm_reads(), "warm path must be on by default");
        let init_wm: Vec<usize> =
            (0..SERIES).map(|s| eng.watermark(s).expect("fixture series")).collect();
        let journal = Journal::new(init_wm.clone());
        let writer_series: [Vec<usize>; 2] = [vec![0, 1], vec![2, 3]];

        std::thread::scope(|scope| {
            let (eng, journal, init_wm) = (&eng, &journal, &init_wm);
            for (wi, owned) in writer_series.iter().enumerate() {
                scope.spawn(move || {
                    let mut rng = Lcg(seed.wrapping_mul(101) + wi as u64);
                    let mut appended = [0usize; SERIES];
                    for round in 0..12 {
                        for &s in owned {
                            let chunk = 1 + rng.below(4) as usize;
                            let vals: Vec<f64> =
                                (0..chunk).map(|k| stream_val(s, appended[s] + k)).collect();
                            let report = eng.append(s, &vals).expect("append failed");
                            appended[s] += chunk;
                            assert_eq!(report.recorded.1, init_wm[s] + appended[s]);
                            // Publish the committed watermark only now —
                            // after the append returned — so readers demand
                            // visibility of exactly what has committed.
                            journal.committed_wm[s]
                                .store(init_wm[s] + appended[s], Ordering::SeqCst);
                        }
                        // Midway, backfill the hidden gap (the fill_range
                        // leg): one atomic commit readers can never see
                        // partially or see revert.
                        if round == 5 {
                            for &s in owned {
                                eng.fill_range(s, GAP.0, &[FILL_VALUE; GAP.1 - GAP.0])
                                    .expect("backfill failed");
                                journal.gap_filled[s].store(true, Ordering::SeqCst);
                            }
                        }
                    }
                });
            }
            for r in 0..n_readers {
                scope.spawn(move || {
                    let mut rng = Lcg(seed.wrapping_mul(7919) + 31 + r as u64);
                    let mut saw_fill = [false; SERIES];
                    for _ in 0..reads {
                        let s = rng.below(SERIES as u64) as usize;
                        let committed = journal.committed_wm[s].load(Ordering::SeqCst);
                        let len = 1 + rng.below(40) as usize;
                        let b = (1 + rng.below(committed as u64) as usize).min(committed);
                        let a = b.saturating_sub(len);
                        checked_read(eng, &fix.obs, journal, init_wm, s, a, b, &mut saw_fill[s]);
                    }
                });
            }
        });
        assert_quiescent_oracle(&eng);
        // No fault was injected anywhere: the health surface must be silent.
        let health = eng.health();
        assert_eq!(health.quarantined, 0);
        assert_eq!(health.poison_recoveries, 0);
        assert_eq!(health.degraded_events, 0);
    }
}

#[test]
fn stress_hot_spot_single_series() {
    let fix = fixture();
    let eng = Arc::new(engine());
    let init_wm: Vec<usize> =
        (0..SERIES).map(|s| eng.watermark(s).expect("fixture series")).collect();
    let journal = Journal::new(init_wm.clone());
    let reads = reads_per_thread();

    // Every reader hammers series 0 while its single writer streams into it
    // — the worst case for reader/writer interleaving on one snapshot cell.
    std::thread::scope(|scope| {
        let (eng, journal, init_wm) = (&eng, &journal, &init_wm);
        scope.spawn(move || {
            let mut appended = 0usize;
            for round in 0..30 {
                let chunk = 1 + (round % 3);
                let vals: Vec<f64> = (0..chunk).map(|k| stream_val(0, appended + k)).collect();
                eng.append(0, &vals).expect("append failed");
                appended += chunk;
                journal.committed_wm[0].store(init_wm[0] + appended, Ordering::SeqCst);
            }
        });
        for r in 0..4u64 {
            scope.spawn(move || {
                let mut rng = Lcg(977 + r);
                let mut saw_fill = false;
                for _ in 0..reads {
                    let committed = journal.committed_wm[0].load(Ordering::SeqCst);
                    let len = 1 + rng.below(30) as usize;
                    let b = (1 + rng.below(committed as u64) as usize).min(committed);
                    let a = b.saturating_sub(len);
                    checked_read(eng, &fix.obs, journal, init_wm, 0, a, b, &mut saw_fill);
                }
            });
        }
    });
    assert_quiescent_oracle(&eng);
}

// ---------------------------------------------------------------------------
// Property: sharded == single-lock, bitwise, under sequential replay
// ---------------------------------------------------------------------------

/// One recorded operation of the replay log.
enum Op {
    Append(usize, Vec<f64>),
    Fill(usize, usize, Vec<f64>),
    Query(usize, usize, usize),
}

/// A seeded operation log over the fixture geometry.
fn op_log(seed: u64, n_ops: usize) -> Vec<Op> {
    let mut rng = Lcg(seed);
    let mut live = T_LEN;
    let mut ops = Vec::with_capacity(n_ops);
    for _ in 0..n_ops {
        match rng.below(10) {
            0..=2 => {
                let s = rng.below(SERIES as u64) as usize;
                let chunk = 1 + rng.below(4) as usize;
                let vals: Vec<f64> = (0..chunk).map(|k| stream_val(s, 5000 + k)).collect();
                if s == 0 {
                    live += chunk; // series 0's appends run past the live end
                }
                ops.push(Op::Append(s, vals));
            }
            3 => {
                let s = rng.below(SERIES as u64) as usize;
                ops.push(Op::Fill(s, GAP.0, vec![FILL_VALUE; GAP.1 - GAP.0]));
            }
            _ => {
                let s = rng.below(SERIES as u64) as usize;
                let b = 1 + rng.below(live as u64) as usize;
                let a = b.saturating_sub(1 + rng.below(35) as usize);
                ops.push(Op::Query(s, a, b));
            }
        }
    }
    ops
}

#[test]
fn sharded_replay_is_bitwise_identical_to_single_lock_engine() {
    for seed in [3u64, 17, 91] {
        let sharded = engine();
        let locked = engine();
        locked.set_warm_reads(false);
        assert!(!locked.warm_reads());

        for op in op_log(seed, 80) {
            match op {
                Op::Append(s, vals) => {
                    let a = sharded.append(s, &vals).expect("sharded append");
                    let b = locked.append(s, &vals).expect("locked append");
                    assert_eq!(a, b, "append reports diverged (seed {seed})");
                }
                Op::Fill(s, start, vals) => {
                    let a = sharded.fill_range(s, start, &vals).expect("sharded fill");
                    let b = locked.fill_range(s, start, &vals).expect("locked fill");
                    assert_eq!(a, b, "fill reports diverged (seed {seed})");
                }
                Op::Query(s, a, b) => {
                    let x = sharded.query_flagged(s, a, b).expect("sharded query");
                    let y = locked.query_flagged(s, a, b).expect("locked query");
                    assert_eq!(x.degraded, y.degraded);
                    assert_eq!(x.values.len(), y.values.len());
                    for (i, (va, vb)) in x.values.iter().zip(&y.values).enumerate() {
                        assert_eq!(
                            va.to_bits(),
                            vb.to_bits(),
                            "seed {seed} series {s} [{a},{b}) offset {i}: warm path diverged"
                        );
                    }
                }
            }
        }
        // Full-state equality: cache bitwise, stats and health identical —
        // the warm path changed *where* answers come from, never *what*.
        let (cs, cl) = (sharded.cached_values(), locked.cached_values());
        assert_eq!(cs.shape(), cl.shape());
        for (a, b) in cs.data().iter().zip(cl.data()) {
            assert_eq!(a.to_bits(), b.to_bits(), "cache diverged (seed {seed})");
        }
        assert_eq!(sharded.stats(), locked.stats(), "counter streams diverged (seed {seed})");
        assert_eq!(sharded.health(), locked.health(), "health diverged (seed {seed})");
    }
}

// ---------------------------------------------------------------------------
// Fault isolation under concurrency
// ---------------------------------------------------------------------------

#[test]
fn panicking_evaluator_on_one_shard_does_not_stall_or_corrupt_others() {
    let fix = fixture();
    let eng = Arc::new(engine());
    eng.warm_up();
    let init_wm: Vec<usize> =
        (0..SERIES).map(|s| eng.watermark(s).expect("fixture series")).collect();

    // The hook panics exactly once — armed to fire during the eager
    // recompute of a series-0 mutation (shard A's traffic).
    let armed = Arc::new(AtomicBool::new(true));
    let armed_hook = Arc::clone(&armed);
    eng.set_eval_hook(Some(Box::new(move |_results| {
        if armed_hook.swap(false, Ordering::SeqCst) {
            panic!("injected shard-A evaluator panic");
        }
    })));

    let stop = AtomicBool::new(false);
    let served: Vec<AtomicUsize> = (1..SERIES).map(|_| AtomicUsize::new(0)).collect();
    let wait_past = |floor: &[usize]| {
        while served.iter().zip(floor).any(|(c, &f)| c.load(Ordering::SeqCst) <= f) {
            std::thread::yield_now();
        }
    };
    std::thread::scope(|scope| {
        let (eng, stop, served) = (&eng, &stop, &served);
        // Readers on series 1..6 (shards B..N): warm reads that must keep
        // succeeding before, during and after the shard-A panic.
        for (i, s) in (1..SERIES).enumerate() {
            scope.spawn(move || {
                while !stop.load(Ordering::SeqCst) {
                    let resp =
                        eng.query_flagged(s, 0, T_LEN).expect("sibling read failed mid-panic");
                    assert_eq!(resp.values.len(), T_LEN);
                    assert!(resp.values.iter().all(|v| v.is_finite()));
                    served[i].fetch_add(1, Ordering::SeqCst);
                }
            });
        }
        // Every reader is demonstrably serving before the fault lands ...
        wait_past(&[0; SERIES - 1]);

        // Shard A: the panicking mutation, caught like the batcher's
        // supervisor would.
        let result = catch_unwind(AssertUnwindSafe(|| eng.append(0, &[1.0, 2.0, 3.0])));
        assert!(result.is_err(), "armed hook must panic through the append");
        // The engine recovered: an immediate un-hooked mutation succeeds.
        assert!(!armed.load(Ordering::SeqCst));
        eng.append(0, &[4.0]).expect("engine wedged after panic");

        // ... and every reader demonstrably serves *again* after it: a
        // panic on shard A stalled nobody.
        let floor: Vec<usize> = served.iter().map(|c| c.load(Ordering::SeqCst)).collect();
        wait_past(&floor);
        stop.store(true, Ordering::SeqCst);
    });

    let health = eng.health();
    assert_eq!(health.poison_recoveries, 1, "exactly one poison recovery");
    assert_eq!(health.degraded_events, 0, "a panic is not a degradation");

    // Shard B..N reads are still exactly right after recovery, and the
    // whole engine converges to the sequential oracle.
    eng.set_eval_hook(None);
    for s in 1..SERIES {
        let got = eng.query(s, 0, T_LEN).expect("post-recovery read");
        let avail = fix.obs.available.series(s);
        let orig = fix.obs.values.series(s);
        for t in 0..T_LEN {
            if avail[t] {
                assert_eq!(got[t], orig[t], "series {s} t={t}: observed value corrupted");
            }
        }
    }
    // The recovered engine still knows the panicked append never committed
    // its tail value and the follow-up did: watermarks moved exactly twice.
    assert_eq!(eng.watermark(0).unwrap(), init_wm[0] + 4);
    assert_quiescent_oracle(&eng);
}

#[test]
fn degraded_and_quarantine_counters_stay_accurate_under_parallel_load() {
    // Run the identical fault workload against different shard counts
    // concurrently probed by health readers: per-shard bucketing must never
    // lose or double a count (the aggregate is invariant under sharding),
    // and every in-flight report must satisfy the sum invariant.
    let mut reports = Vec::new();
    for shards in [1usize, 2, 4] {
        let eng = Arc::new(engine_with(EngineOptions { retention: None, shards: Some(shards) }));
        assert_eq!(eng.shard_count(), shards);
        eng.warm_up();
        eng.set_value_guard(Some(ValueGuard { abs_max: Some(100.0), max_jump: None }));

        let stop = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let (eng, stop) = (&eng, &stop);
            let health_reader = scope.spawn(move || {
                let mut checks = 0usize;
                while !stop.load(Ordering::SeqCst) {
                    let h = eng.health();
                    assert_eq!(
                        h.quarantined,
                        h.quarantined_by_series.iter().sum::<u64>(),
                        "torn health aggregate ({shards} shards)"
                    );
                    checks += 1;
                }
                checks
            });
            // Writers: every series gets 10 appends of [ok, spike, ok] —
            // exactly 10 quarantined values per series.
            let writers: Vec<_> = (0..SERIES)
                .map(|s| {
                    scope.spawn(move || {
                        for _ in 0..10 {
                            eng.append(s, &[1.0, 5000.0, 2.0]).expect("guarded append");
                        }
                    })
                })
                .collect();
            for w in writers {
                w.join().expect("writer panicked");
            }
            stop.store(true, Ordering::SeqCst);
            assert!(health_reader.join().expect("health reader panicked") > 0);
        });

        let h = eng.health();
        assert_eq!(h.quarantined_by_series, vec![10u64; SERIES], "{shards} shards");
        assert_eq!(h.quarantined, 10 * SERIES as u64);
        reports.push(h);
    }
    assert!(reports.windows(2).all(|w| w[0] == w[1]), "aggregate must be shard-count invariant");
}

#[test]
fn shard_collisions_and_nonfinite_rejections_stay_per_series_exact() {
    let eng = engine_with(EngineOptions { retention: None, shards: Some(2) });
    // With 6 series over 2 shards some pair must collide; drive concurrent
    // guarded traffic through a colliding pair and a non-colliding series.
    let colliding: Vec<usize> =
        (1..SERIES).filter(|&s| eng.shard_of(s) == eng.shard_of(0)).collect();
    let other = (1..SERIES).find(|&s| eng.shard_of(s) != eng.shard_of(0));
    assert!(!colliding.is_empty() || other.is_some());
    eng.set_value_guard(Some(ValueGuard { abs_max: Some(100.0), max_jump: None }));

    let mut targets = vec![0usize];
    targets.extend(colliding.first().copied());
    targets.extend(other);
    std::thread::scope(|scope| {
        let eng = &eng;
        for &s in &targets {
            scope.spawn(move || {
                for k in 0..8 {
                    // One quarantined spike per append + one rejected
                    // non-finite payload per round.
                    eng.append(s, &[0.5, 9000.0, 0.5]).expect("guarded append");
                    let err = eng.append(s, &[f64::NAN]).unwrap_err();
                    assert!(
                        matches!(err, mvi_serve::ServeError::NonFiniteInput { .. }),
                        "round {k}"
                    );
                }
            });
        }
    });
    let h = eng.health();
    for &s in &targets {
        assert_eq!(h.quarantined_by_series[s], 8, "series {s} (shard {})", eng.shard_of(s));
    }
    assert_eq!(h.quarantined, 8 * targets.len() as u64);
    assert_eq!(h.nonfinite_input_rejections, 8 * targets.len() as u64);
}

// ---------------------------------------------------------------------------
// Warm-path plumbing
// ---------------------------------------------------------------------------

#[test]
fn warm_reads_toggle_republishes_live_state() {
    let eng = engine();
    eng.warm_up();
    let live = eng.live_len();
    let before = eng.query(2, 0, live).unwrap();

    // Mutate with the warm path off: nothing publishes meanwhile.
    eng.set_warm_reads(false);
    eng.append(2, &[3.25, 4.5]).unwrap();
    let mid = eng.query(2, 0, eng.live_len()).unwrap();
    assert_ne!(before, mid);

    // Re-enabling republishes *before* the flag flips: the first warm read
    // must already see the mutation made while the path was off.
    eng.set_warm_reads(true);
    let after = eng.query(2, 0, eng.live_len()).unwrap();
    assert_eq!(mid, after, "warm path served pre-gap state");
    let tail = eng.query(2, eng.live_len() - 2, eng.live_len()).unwrap();
    assert_eq!(tail, vec![3.25, 4.5]);
}

#[test]
fn warm_path_actually_serves_without_the_core_lock() {
    let eng = Arc::new(engine());
    eng.warm_up();
    // Hold the core lock hostage through a stalled eval hook driven by a
    // mutation on another thread; warm reads must keep answering.
    let release = Arc::new(AtomicBool::new(false));
    let stalled = Arc::new(AtomicBool::new(false));
    let (release_hook, stalled_hook) = (Arc::clone(&release), Arc::clone(&stalled));
    eng.set_eval_hook(Some(Box::new(move |_| {
        stalled_hook.store(true, Ordering::SeqCst);
        while !release_hook.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }
    })));

    std::thread::scope(|scope| {
        let eng_m = Arc::clone(&eng);
        let mutator = scope.spawn(move || {
            // The append's eager recompute enters the hook and parks while
            // holding the core lock.
            eng_m.append(0, &[1.0, 2.0]).expect("stalled append");
        });
        while !stalled.load(Ordering::SeqCst) {
            std::thread::yield_now();
        }
        // Core lock is held right now. Warm reads on other series still
        // answer from their published snapshots.
        let wait_before = eng.lock_wait_nanos();
        for s in 1..SERIES {
            let got = eng.query(s, 0, T_LEN).expect("warm read blocked by a held core lock");
            assert_eq!(got.len(), T_LEN);
        }
        assert_eq!(
            eng.lock_wait_nanos(),
            wait_before,
            "warm reads must not touch (let alone wait on) the core lock"
        );
        release.store(true, Ordering::SeqCst);
        mutator.join().expect("mutator panicked");
    });
    eng.set_eval_hook(None);
}
