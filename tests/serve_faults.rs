//! Fault-injection suite for the serving layer (PR 6): every failure the
//! fault-tolerance layer promises to survive is injected here and must come
//! back as a **typed error or a flagged degraded result — never a panic,
//! never silently-wrong data**:
//!
//! * poisoned streams: NaN/±inf payloads are refused before anything touches
//!   storage; absurd-but-finite values are quarantined by the [`ValueGuard`]
//!   while the stream keeps flowing;
//! * a panicking evaluation (injected through the engine's
//!   [`mvi_serve::EvalHook`]) is caught by the micro-batcher's supervisor and
//!   by the engine's poison-recovering state lock;
//! * a flooded batcher sheds load with `Overloaded`; a stalled evaluation
//!   frees its client with `DeadlineExceeded`;
//! * non-finite forward outputs degrade the window to the mean baseline with
//!   the degradation flagged, and heal on the next clean recompute;
//! * durable snapshot files survive truncation and bit flips as typed
//!   `Corrupt` errors (proptest-fuzzed), and `restore_with_fallback` walks
//!   back to the last good generation;
//! * with guards installed but not firing, the served values stay **bitwise
//!   identical** to the unguarded engine.
//!
//! The trained model is built **once** per process (training is the expensive
//! step); every test restores its own engine from the shared snapshot.

use deepmvi::{DeepMviConfig, DeepMviModel};
use mvi_data::dataset::ObservedDataset;
use mvi_data::generators::{generate_with_shape, DatasetName};
use mvi_data::scenarios::Scenario;
use mvi_serve::{
    BatcherConfig, ImputationEngine, MicroBatcher, ServeError, ServeSnapshot, ValueGuard,
};
use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

const SERIES: usize = 3;
const T_LEN: usize = 120;

struct Fixture {
    obs: ObservedDataset,
    snapshot_json: String,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let ds = generate_with_shape(DatasetName::Chlorine, &[SERIES], T_LEN, 11);
        let mut obs = Scenario::mcar(1.0).apply(&ds, 5).observed();
        // A streaming future for series 0, so appends land inside the live
        // range without growing it.
        obs.hide_range(0, 90, T_LEN);
        let cfg = DeepMviConfig { max_steps: 12, ..DeepMviConfig::tiny() };
        let mut model = DeepMviModel::new(&cfg, &obs);
        model.fit(&obs);
        let snapshot_json = ServeSnapshot::capture(&model, &obs).to_json();
        Fixture { obs, snapshot_json }
    })
}

/// A fresh engine over the fixture's trained state.
fn engine() -> ImputationEngine {
    let fix = fixture();
    let snap = ServeSnapshot::from_json(&fix.snapshot_json).expect("fixture snapshot parses");
    let frozen = snap.restore(&fix.obs).expect("fixture model restores");
    ImputationEngine::new(frozen, fix.obs.clone()).expect("fixture engine builds")
}

/// Unique scratch path for durable-snapshot tests (the suite runs tests in
/// parallel inside one process).
fn scratch_path(tag: &str) -> PathBuf {
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("mvi_faults_{}_{tag}_{n}.snap", std::process::id()))
}

// ---------------------------------------------------------------------------
// Poisoned streams: input quarantine
// ---------------------------------------------------------------------------

#[test]
fn nonfinite_payloads_are_rejected_before_anything_touches_storage() {
    let eng = engine();
    eng.warm_up();
    let before_obs = eng.observed();
    let before_cache = eng.cached_values();
    let wm = eng.watermark(0).unwrap();

    for (payload, offset) in [
        (vec![1.0, f64::NAN, 2.0], 1),
        (vec![f64::INFINITY], 0),
        (vec![0.5, 0.5, 0.5, f64::NEG_INFINITY], 3),
    ] {
        let err = eng.append(0, &payload).unwrap_err();
        assert_eq!(err, ServeError::NonFiniteInput { s: 0, offset });
        let err = eng.fill_range(1, 10, &payload).unwrap_err();
        assert_eq!(err, ServeError::NonFiniteInput { s: 1, offset });
    }

    // The whole mutation was refused: observed state, cache and watermarks
    // are untouched, and the health surface counted every rejection.
    let after_obs = eng.observed();
    assert_eq!(after_obs.values, before_obs.values, "rejected values leaked into storage");
    assert_eq!(after_obs.available, before_obs.available, "rejected append changed availability");
    assert_eq!(eng.cached_values(), before_cache, "rejected append leaked into the cache");
    assert_eq!(eng.watermark(0).unwrap(), wm);
    let health = eng.health();
    assert_eq!(health.nonfinite_input_rejections, 6);
    assert_eq!(eng.stats().appends, 0, "no rejected mutation may count as an append");
}

#[test]
fn value_guard_quarantines_absurd_values_without_stopping_the_stream() {
    let eng = engine();
    eng.set_value_guard(Some(ValueGuard { abs_max: Some(100.0), max_jump: Some(50.0) }));
    let wm = eng.watermark(0).unwrap();

    // A glitching sensor: sane readings with two absurd spikes. The spikes
    // are finite, so the mutation succeeds — they are just never recorded.
    let payload = [1.0, 2.0, 9999.0, 3.0, -4444.0, 4.0];
    let report = eng.append(0, &payload).unwrap();
    assert_eq!(report.recorded, (wm, wm + payload.len()), "the stream keeps advancing");
    assert_eq!(report.values_quarantined, 2);
    assert_eq!(eng.watermark(0).unwrap(), wm + payload.len());

    // Accepted values serve back verbatim; quarantined positions are imputed
    // (finite, not the absurd reading).
    let served = eng.query(0, wm, wm + payload.len()).unwrap();
    assert_eq!(served[0], 1.0);
    assert_eq!(served[1], 2.0);
    assert_eq!(served[3], 3.0);
    assert_eq!(served[5], 4.0);
    for (i, v) in served.iter().enumerate() {
        assert!(v.is_finite(), "position {i} not finite");
        assert!(v.abs() < 1000.0, "quarantined value leaked into serving: {v}");
    }

    // The observed state really has holes at the quarantined positions.
    let avail = eng.observed().available.series(0).to_vec();
    assert!(avail[wm] && avail[wm + 1] && avail[wm + 3] && avail[wm + 5]);
    assert!(!avail[wm + 2] && !avail[wm + 4], "quarantined values entered the observed state");

    let health = eng.health();
    assert_eq!(health.quarantined, 2);
    assert_eq!(health.quarantined_by_series, vec![2, 0, 0]);
    assert_eq!(eng.stats().values_appended, 4, "only accepted values count as appended");

    // The jump guard references the last *accepted* value: after the 9999.0
    // spike, 3.0 is judged against 2.0 (accepted), not against the spike.
    // A genuine level shift beyond the jump bound is quarantined too.
    let report = eng.append(0, &[90.0]).unwrap();
    assert_eq!(report.values_quarantined, 1, "jump from 4.0 to 90.0 exceeds the bound");

    // Clearing the guard restores trusting ingestion.
    eng.set_value_guard(None);
    let report = eng.append(0, &[90.0]).unwrap();
    assert_eq!(report.values_quarantined, 0);
}

// ---------------------------------------------------------------------------
// Panicking evaluations: supervisor + poison recovery
// ---------------------------------------------------------------------------

#[test]
fn injected_panic_is_a_typed_error_and_the_engine_recovers() {
    let eng = engine();
    let armed = Arc::new(AtomicBool::new(true));
    let hook_armed = Arc::clone(&armed);
    eng.set_eval_hook(Some(Box::new(move |_results| {
        if hook_armed.load(Ordering::Relaxed) {
            panic!("injected evaluator fault");
        }
    })));

    // Direct engine call: the panic unwinds through the state lock. The next
    // call must recover (poison-healing lock), not panic or deadlock.
    let unwound = catch_unwind(AssertUnwindSafe(|| eng.query(0, 0, T_LEN)));
    assert!(unwound.is_err(), "the injected panic must surface to the direct caller");

    armed.store(false, Ordering::Relaxed);
    let served = eng.query(0, 0, T_LEN).expect("engine wedged after a panic");
    assert_eq!(served.len(), T_LEN);
    assert!(served.iter().all(|v| v.is_finite()));
    let health = eng.health();
    assert!(health.poison_recoveries >= 1, "poison recovery not counted");

    // Recovery marked everything stale; a healed sweep serves the exact
    // batch-impute oracle — the panic cost recompute, never wrong answers.
    let oracle = eng.model().impute(&eng.observed());
    for s in 0..SERIES {
        assert_eq!(eng.query(s, 0, T_LEN).unwrap(), oracle.series(s), "series {s}");
    }
}

#[test]
fn batcher_supervisor_isolates_a_panicking_batch() {
    let eng = Arc::new(engine());
    let panics_left = Arc::new(AtomicUsize::new(1));
    let hook_count = Arc::clone(&panics_left);
    eng.set_eval_hook(Some(Box::new(move |_results| {
        if hook_count
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
            .is_ok()
        {
            panic!("injected batch fault");
        }
    })));

    let batcher = MicroBatcher::spawn(Arc::clone(&eng), 8);
    let mut handles = Vec::new();
    for s in 0..SERIES {
        for _ in 0..3 {
            let client = batcher.client();
            handles.push(std::thread::spawn(move || client.query(s, 0, T_LEN)));
        }
    }
    // Every caller gets an answer: a real one (the one-by-one retry isolates
    // the panicking evaluation, and recovery re-imputes) or the typed
    // `Panicked` — never a hang, never process death.
    for h in handles {
        match h.join().expect("client thread must not die") {
            Ok(vals) => assert_eq!(vals.len(), T_LEN),
            Err(ServeError::Panicked) => {}
            Err(other) => panic!("unexpected batcher error: {other}"),
        }
    }
    assert!(batcher.panics_caught() >= 1, "the supervisor saw no panic");

    // The worker survived: a fresh request on the same batcher succeeds and
    // matches the oracle (the panic left no wrong data behind).
    let client = batcher.client();
    let oracle = eng.model().impute(&eng.observed());
    for s in 0..SERIES {
        assert_eq!(client.query(s, 0, T_LEN).unwrap(), oracle.series(s), "series {s}");
    }
}

// ---------------------------------------------------------------------------
// Flooding + deadlines
// ---------------------------------------------------------------------------

#[test]
fn flooded_batcher_sheds_load_with_a_typed_overloaded_error() {
    let eng = Arc::new(engine());
    let release = Arc::new(AtomicBool::new(false));
    let hook_release = Arc::clone(&release);
    eng.set_eval_hook(Some(Box::new(move |_results| {
        while !hook_release.load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_millis(5));
        }
    })));

    let batcher = MicroBatcher::spawn_with(
        Arc::clone(&eng),
        BatcherConfig { max_batch: 1, queue_cap: 2, deadline: None },
    );
    // First request occupies the worker inside the stalled evaluation...
    let stalled = {
        let client = batcher.client();
        std::thread::spawn(move || client.query(0, 0, T_LEN))
    };
    while eng.stats().batches == 0 {
        std::thread::sleep(Duration::from_millis(5));
    }
    // ...so subsequent submissions pile into the bounded queue. With the
    // worker provably stalled, submissions beyond the cap must shed.
    let mut floods = Vec::new();
    for _ in 0..6 {
        let client = batcher.client();
        floods.push(std::thread::spawn(move || client.query(1, 0, T_LEN)));
    }
    std::thread::sleep(Duration::from_millis(300));
    release.store(true, Ordering::Release);

    let mut overloaded = 0;
    for h in floods {
        match h.join().unwrap() {
            Ok(vals) => assert_eq!(vals.len(), T_LEN),
            Err(ServeError::Overloaded { capacity }) => {
                assert_eq!(capacity, 2);
                overloaded += 1;
            }
            Err(other) => panic!("unexpected flood error: {other}"),
        }
    }
    assert!(overloaded >= 1, "a flood over a 2-deep queue must shed load");
    assert_eq!(stalled.join().unwrap().unwrap().len(), T_LEN);
}

#[test]
fn stuck_evaluation_frees_the_client_with_deadline_exceeded() {
    let eng = Arc::new(engine());
    let release = Arc::new(AtomicBool::new(false));
    let hook_release = Arc::clone(&release);
    eng.set_eval_hook(Some(Box::new(move |_results| {
        while !hook_release.load(Ordering::Acquire) {
            std::thread::sleep(Duration::from_millis(5));
        }
    })));

    let batcher = MicroBatcher::spawn_with(
        Arc::clone(&eng),
        BatcherConfig { max_batch: 4, queue_cap: 16, deadline: Some(Duration::from_millis(60)) },
    );
    // The stalled evaluation must not hang its caller past the deadline.
    let stuck = batcher.client().query(0, 0, T_LEN);
    assert_eq!(stuck, Err(ServeError::DeadlineExceeded));

    // A request that expires while *queued* behind the stall is skipped by
    // the worker without wasting a forward pass: only the stalled batch is
    // ever evaluated.
    let queued = {
        let client = batcher.client();
        std::thread::spawn(move || client.query(1, 0, T_LEN))
    };
    assert_eq!(queued.join().unwrap(), Err(ServeError::DeadlineExceeded));
    let requests_before_release = eng.stats().requests;
    release.store(true, Ordering::Release);
    eng.set_eval_hook(None); // blocks until the stalled evaluation finishes

    assert_eq!(
        eng.stats().requests,
        requests_before_release,
        "the expired queued request must not have been evaluated"
    );
    // The batcher is healthy again: a fresh request beats the deadline.
    assert_eq!(batcher.client().query(0, 0, T_LEN).unwrap().len(), T_LEN);
}

// ---------------------------------------------------------------------------
// Output guard: non-finite forward output degrades, heals, never serves NaN
// ---------------------------------------------------------------------------

#[test]
fn nonfinite_forward_output_degrades_to_the_mean_baseline_and_heals() {
    let eng = engine();
    let poison = Arc::new(AtomicBool::new(true));
    let hook_poison = Arc::clone(&poison);
    eng.set_eval_hook(Some(Box::new(move |results| {
        if hook_poison.load(Ordering::Relaxed) {
            for vals in results.iter_mut() {
                vals.iter_mut().for_each(|v| *v = f64::NAN);
            }
        }
    })));

    // Poisoned forward pass: the answer is still finite, and flagged.
    let resp = eng.query_flagged(0, 0, T_LEN).unwrap();
    assert!(resp.degraded, "poisoned output must be flagged degraded");
    assert!(resp.values.iter().all(|v| v.is_finite()), "NaN leaked through the output guard");
    assert!(
        eng.cached_values().data().iter().all(|v| v.is_finite()),
        "NaN entered the imputation cache"
    );
    let health = eng.health();
    assert!(health.degraded_events >= 1);
    assert!(health.degraded_windows >= 1);

    // Degraded positions serve the series' observed mean — carrying no model
    // signal but safe to display.
    let obs = eng.observed();
    let (avail, vals) = (obs.available.series(0), obs.values.series(0));
    let observed: Vec<f64> = avail.iter().zip(vals).filter_map(|(&a, &v)| a.then_some(v)).collect();
    let mean = observed.iter().sum::<f64>() / observed.len() as f64;
    let missing_at = avail.iter().position(|&a| !a).expect("fixture has a gap in series 0");
    assert!(
        (resp.values[missing_at] - mean).abs() < 1e-12,
        "degraded position served {} instead of the mean baseline {mean}",
        resp.values[missing_at]
    );

    // Heal: disarm the fault, invalidate via a mutation, and the degradation
    // clears — the window serves model signal again, unflagged.
    poison.store(false, Ordering::Relaxed);
    let wm = eng.watermark(0).unwrap();
    eng.append(0, &[0.5, 0.6]).unwrap();
    let resp = eng.query_flagged(0, 0, wm).unwrap();
    assert!(!resp.degraded, "healed window still flagged");
    assert_eq!(eng.health().degraded_windows, 0, "all degradation must heal");
}

// ---------------------------------------------------------------------------
// Durable snapshots: fuzzing + fallback
// ---------------------------------------------------------------------------

/// The fixture engine's framed durable snapshot bytes (written once).
fn durable_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(|| {
        let eng = engine();
        eng.warm_up();
        let path = scratch_path("fixture");
        eng.snapshot_to_path(&path).expect("durable write");
        let bytes = std::fs::read(&path).expect("read back");
        let _ = std::fs::remove_file(&path);
        bytes
    })
}

#[test]
fn durable_snapshot_roundtrips_and_fallback_walks_to_the_last_good_generation() {
    let eng = engine();
    eng.warm_up();
    let served: Vec<Vec<f64>> = (0..SERIES).map(|s| eng.query(s, 0, T_LEN).unwrap()).collect();

    let good = scratch_path("good");
    let corrupt = scratch_path("corrupt");
    let missing = scratch_path("missing");
    eng.snapshot_to_path(&good).unwrap();

    // The pristine file warm-restarts with zero forward passes.
    let restored = ImputationEngine::from_snapshot_path(&good).unwrap();
    for (s, expect) in served.iter().enumerate() {
        assert_eq!(&restored.query(s, 0, T_LEN).unwrap(), expect, "series {s}");
    }
    assert_eq!(restored.stats().windows_computed, 0);

    // A bit-flipped copy fails typed, naming the broken section.
    let mut bytes = std::fs::read(&good).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    std::fs::write(&corrupt, &bytes).unwrap();
    match ImputationEngine::from_snapshot_path(&corrupt) {
        Err(ServeError::Corrupt { section, .. }) => {
            assert!(!section.is_empty(), "corruption must name a section")
        }
        Err(other) => panic!("expected Corrupt, got {other}"),
        Ok(_) => panic!("a bit-flipped snapshot must never load"),
    }

    // Fallback: corrupt newest + missing sibling still restore from the
    // older good generation, reporting which one served.
    let (fallback, used) =
        ImputationEngine::restore_with_fallback(&[&corrupt, &missing, &good]).unwrap();
    assert_eq!(used, 2, "the good generation is the third candidate");
    assert_eq!(fallback.query(0, 0, T_LEN).unwrap(), served[0]);

    // All-bad candidates aggregate into one typed failure.
    let err =
        ImputationEngine::restore_with_fallback(&[&corrupt, &missing]).map(|_| ()).unwrap_err();
    assert!(matches!(err, ServeError::Snapshot(msg) if msg.contains("2 candidate(s)")));

    let _ = std::fs::remove_file(&good);
    let _ = std::fs::remove_file(&corrupt);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random truncation of the framed snapshot never panics and never
    /// loads: every cut is a typed `Corrupt`/`Snapshot` error.
    #[test]
    fn truncated_snapshot_files_fail_typed(cut in 0usize..100) {
        let bytes = durable_bytes();
        // Spread the cuts over the whole file, always strictly truncating.
        let keep = (bytes.len() - 1) * (cut + 1) / 100;
        let path = scratch_path("trunc");
        std::fs::write(&path, &bytes[..keep]).unwrap();
        let result = ImputationEngine::from_snapshot_path(&path);
        let _ = std::fs::remove_file(&path);
        match result {
            Err(ServeError::Corrupt { .. } | ServeError::Snapshot(_)) => {}
            Err(other) => prop_assert!(false, "unexpected error type: {other}"),
            Ok(_) => prop_assert!(false, "a truncated snapshot must never load"),
        }
    }

    /// A single flipped bit anywhere in the framed file — header, digest,
    /// or body — never panics and never loads silently.
    #[test]
    fn bitflipped_snapshot_files_fail_typed(pos in 0usize..10_000, bit in 0u8..8) {
        let mut bytes = durable_bytes().to_vec();
        let i = pos % bytes.len();
        bytes[i] ^= 1 << bit;
        let path = scratch_path("flip");
        std::fs::write(&path, &bytes).unwrap();
        let result = ImputationEngine::from_snapshot_path(&path);
        let _ = std::fs::remove_file(&path);
        match result {
            Err(ServeError::Corrupt { .. } | ServeError::Snapshot(_)) => {}
            Err(other) => prop_assert!(false, "unexpected error type: {other}"),
            Ok(_) => prop_assert!(false, "a bit-flipped snapshot must never load"),
        }
    }
}

// ---------------------------------------------------------------------------
// Happy path: the guards cost no correctness
// ---------------------------------------------------------------------------

#[test]
fn guarded_happy_path_is_bitwise_identical_to_unguarded() {
    let trusting = engine();
    let guarded = engine();
    // Generous bounds that sane data never trips, plus the full batcher
    // front door on the guarded side.
    guarded.set_value_guard(Some(ValueGuard { abs_max: Some(1e9), max_jump: Some(1e9) }));

    let stream: Vec<f64> = (0..20).map(|i| (i as f64 / 9.0).sin()).collect();
    let rt = trusting.append(0, &stream).unwrap();
    let rg = guarded.append(0, &stream).unwrap();
    assert_eq!(rg.values_quarantined, 0, "sane data must not quarantine");
    assert_eq!(rt.recorded, rg.recorded);

    let batcher = MicroBatcher::spawn_with(
        Arc::new(guarded),
        BatcherConfig { max_batch: 8, queue_cap: 64, deadline: Some(Duration::from_secs(30)) },
    );
    let client = batcher.client();
    for s in 0..SERIES {
        let want = trusting.query(s, 0, T_LEN).unwrap();
        let got = client.query(s, 0, T_LEN).unwrap();
        // Bitwise, not approximate: the guards only *observe* the hot path.
        for (i, (a, b)) in want.iter().zip(&got).enumerate() {
            assert_eq!(a.to_bits(), b.to_bits(), "series {s} diverged at {i}");
        }
    }
    assert_eq!(batcher.panics_caught(), 0);
    let health = batcher.engine().health();
    assert_eq!(health.quarantined, 0);
    assert_eq!(health.degraded_events, 0);
    assert_eq!(health.poison_recoveries, 0);
}

// ---------------------------------------------------------------------------
// Error surface: every variant renders for humans
// ---------------------------------------------------------------------------

#[test]
fn serve_error_display_is_exhaustive_and_humane() {
    // One instance of every variant. A new variant added without extending
    // this list will trip the match below at compile time.
    let all = [
        ServeError::Geometry("bad shape".into()),
        ServeError::NonFiniteInput { s: 3, offset: 17 },
        ServeError::Panicked,
        ServeError::Overloaded { capacity: 64 },
        ServeError::DeadlineExceeded,
        ServeError::Corrupt { section: "params/embed".into(), detail: "crc mismatch".into() },
        ServeError::Series { s: 9, n_series: 4 },
        ServeError::Range { start: 5, end: 2, t_len: 100 },
        ServeError::Evicted { start: 0, end: 10, retained_start: 40 },
        ServeError::NonFiniteWeights { param: "temporal.w_q".into() },
        ServeError::Snapshot("parse failed".into()),
        ServeError::Shutdown,
        ServeError::Disconnected,
        ServeError::UnknownTenant { tenant: "acme".into() },
        ServeError::TenantLoading { tenant: "acme".into() },
        ServeError::RegistryFull { capacity: 2 },
    ];
    for err in &all {
        // Exhaustiveness guard: adding a variant breaks this match.
        match err {
            ServeError::Geometry(_)
            | ServeError::NonFiniteInput { .. }
            | ServeError::Panicked
            | ServeError::Overloaded { .. }
            | ServeError::DeadlineExceeded
            | ServeError::Corrupt { .. }
            | ServeError::Series { .. }
            | ServeError::Range { .. }
            | ServeError::Evicted { .. }
            | ServeError::NonFiniteWeights { .. }
            | ServeError::Snapshot(_)
            | ServeError::Shutdown
            | ServeError::Disconnected
            | ServeError::UnknownTenant { .. }
            | ServeError::TenantLoading { .. }
            | ServeError::RegistryFull { .. } => {}
        }
        let rendered = err.to_string();
        assert!(!rendered.is_empty(), "{err:?} renders empty");
        assert!(
            !rendered.contains("ServeError") && !rendered.contains("{ "),
            "`{rendered}` leaks debug formatting"
        );
        // It is a real std error: usable with `?` and error-reporting crates.
        let as_std: &dyn std::error::Error = err;
        assert!(as_std.source().is_none());
    }
    // Key fields actually surface in the text a human reads.
    assert!(ServeError::NonFiniteInput { s: 3, offset: 17 }.to_string().contains("17"));
    assert!(ServeError::Overloaded { capacity: 64 }.to_string().contains("64"));
    assert!(ServeError::Corrupt { section: "cache.values".into(), detail: "x".into() }
        .to_string()
        .contains("cache.values"));
    assert!(ServeError::Evicted { start: 0, end: 10, retained_start: 40 }
        .to_string()
        .contains("40"));
    assert!(ServeError::UnknownTenant { tenant: "acme".into() }.to_string().contains("acme"));
    assert!(ServeError::TenantLoading { tenant: "acme".into() }.to_string().contains("acme"));
    assert!(ServeError::RegistryFull { capacity: 2 }.to_string().contains('2'));
    // The deliberate drain and the crash-shaped loss must read differently:
    // one was answered, the other lost its reply.
    let (shutdown, disconnected) =
        (ServeError::Shutdown.to_string(), ServeError::Disconnected.to_string());
    assert_ne!(shutdown, disconnected);
    assert!(disconnected.contains("lost") || disconnected.contains("disconnected"));
}
