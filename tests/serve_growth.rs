//! End-to-end tests of growable series capacity: appends past the trained
//! `t_len` succeed (the PR-3 bugfix — they used to hard-fail with
//! `AppendOverflow`), the grown tail matches a batch re-impute of the
//! equivalently extended dataset to 1e-9, interior gaps backfill through
//! `fill_range`, grown states snapshot/restore at their live length, and the
//! whole path is bitwise thread-invariant.
//!
//! The trained model is built **once** per process (training is the expensive
//! step); every test restores its own engine from the shared snapshot.

use deepmvi::{DeepMviConfig, DeepMviModel, FrozenModel};
use mvi_data::dataset::{Dataset, ObservedDataset};
use mvi_data::generators::{generate_with_shape, DatasetName};
use mvi_data::scenarios::Scenario;
use mvi_serve::{ImputationEngine, ServeError, ServeSnapshot};
use mvi_tensor::Tensor;
use proptest::prelude::*;
use std::sync::{Mutex, OnceLock};

const SERIES: usize = 3;
/// Series length the model trains on.
const T_TRAIN: usize = 140;
/// Ground truth extends this far past training — the stream source.
const T_FULL: usize = 200;

/// Guards the process-global worker-thread budget (see `tests/determinism.rs`
/// for why thread-flipping tests must serialize).
static POOL_LOCK: Mutex<()> = Mutex::new(());

struct Fixture {
    /// Ground truth over the full horizon `[0, T_FULL)`.
    truth: Tensor,
    /// The trained-length observed view the model was fit on.
    obs: ObservedDataset,
    snapshot_json: String,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let full = generate_with_shape(DatasetName::Chlorine, &[SERIES], T_FULL, 11);
        let trained_ds =
            Dataset::new("growth", full.dims.clone(), full.values.truncated_time(T_TRAIN));
        let inst = Scenario::mcar(1.0).apply(&trained_ds, 5);
        let obs = inst.observed();
        let cfg = DeepMviConfig { max_steps: 20, ..DeepMviConfig::tiny() };
        let mut model = DeepMviModel::new(&cfg, &obs);
        model.fit(&obs);
        let snapshot_json = ServeSnapshot::capture(&model, &obs).to_json();
        Fixture { truth: full.values, obs, snapshot_json }
    })
}

/// A fresh frozen model from the shared snapshot (engines and oracles each
/// need their own instance; both carry bitwise-identical weights).
fn frozen(fix: &Fixture) -> FrozenModel {
    ServeSnapshot::from_json(&fix.snapshot_json)
        .expect("fixture snapshot parses")
        .restore(&fix.obs)
        .expect("fixture snapshot restores")
}

/// The CI growth smoke: append N·w values past the trained length and assert
/// no capacity error — this exact flow returned `AppendOverflow` before
/// series storage became growable. CI runs the suite under both
/// `MVI_THREADS=1` and the default budget, so the smoke covers both.
#[test]
fn growth_smoke_appends_n_windows_past_trained_capacity() {
    let fix = fixture();
    let engine = ImputationEngine::new(frozen(fix), fix.obs.clone()).unwrap();
    assert_eq!(engine.trained_len(), T_TRAIN);
    let w = engine.grid().window_len();
    let target = T_TRAIN + 3 * w;
    assert!(target <= T_FULL, "fixture must hold the grown stream");

    for s in 0..SERIES {
        let wm = engine.watermark(s).unwrap();
        let report = engine
            .append(s, &fix.truth.series(s)[wm..target])
            .expect("append past trained capacity must succeed");
        assert_eq!(report.recorded, (wm, target));
        assert_eq!(engine.watermark(s).unwrap(), target);
    }
    assert_eq!(engine.live_len(), target);
    assert_eq!(engine.grid().n_windows(), target.div_ceil(w));
    for s in 0..SERIES {
        // The grown tail serves the appended observations verbatim.
        let tail = engine.query(s, T_TRAIN, target).unwrap();
        assert_eq!(tail, fix.truth.series(s)[T_TRAIN..target].to_vec());
    }
    // Queries past the live end still validate against the *live* length.
    assert!(matches!(engine.query(0, 0, target + 1), Err(ServeError::Range { .. })));
}

/// Positions `append` refreshes eagerly: missing entries of the appended
/// series from one window before the append onwards, plus missing entries of
/// sibling series inside the appended range (same contract as
/// `tests/serve_online.rs`, now over the live grid).
fn affected_positions(
    engine: &ImputationEngine,
    obs: &ObservedDataset,
    s: usize,
    wm: usize,
    end: usize,
) -> Vec<(usize, usize)> {
    let grid = engine.grid();
    let tail = grid.tail_windows_for(wm);
    let (tail_lo, _) = grid.bounds(tail.start);
    let mut out = Vec::new();
    for series in 0..obs.n_series() {
        let avail = obs.available.series(series);
        let range = if series == s { tail_lo..grid.t_len() } else { wm..end };
        for t in range {
            if !avail[t] {
                out.push((series, t));
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Acceptance property: stream random-sized chunks round-robin past the
    /// trained capacity; after the final append the eagerly refreshed
    /// positions match a batch re-impute of the equivalently extended dataset
    /// to 1e-9, and a full query sweep converges the whole live cache to it.
    #[test]
    fn appends_past_capacity_match_batch_reimpute_of_extended_dataset(
        chunks in proptest::collection::vec(1usize..23, 5..10),
        series_offset in 0usize..SERIES,
    ) {
        let fix = fixture();
        let engine = ImputationEngine::new(frozen(fix), fix.obs.clone()).unwrap();
        let oracle_model = frozen(fix);

        let mut last = None;
        for (i, &len) in chunks.iter().enumerate() {
            let s = (series_offset + i) % SERIES;
            let wm = engine.watermark(s).unwrap();
            let end = (wm + len).min(T_FULL);
            if end <= wm {
                continue;
            }
            let report = engine.append(s, &fix.truth.series(s)[wm..end]).unwrap();
            prop_assert_eq!(report.recorded, (wm, end));
            prop_assert_eq!(report.live_len, engine.live_len());
            last = Some((s, wm, end));
        }
        let Some((s, wm, end)) = last else { return Ok(()); };

        // Oracle: a batch re-impute over the equivalently extended dataset.
        let current = engine.observed();
        prop_assert_eq!(current.t_len(), engine.live_len());
        let oracle = oracle_model.impute(&current);
        let cache = engine.cached_values();
        for (series, t) in affected_positions(&engine, &current, s, wm, end) {
            let got = cache.series(series)[t];
            let want = oracle.series(series)[t];
            prop_assert!(
                (got - want).abs() < 1e-9,
                "series {} t={} after append to {}@{}: engine {} vs oracle {}",
                series, t, s, wm, got, want
            );
        }

        // Lazily-invalidated windows heal on touch; the whole live cache then
        // matches the oracle (observed state is unchanged by queries).
        let live = engine.live_len();
        for series in 0..SERIES {
            engine.query(series, 0, live).unwrap();
        }
        let healed = engine.cached_values();
        prop_assert_eq!(healed.shape(), oracle.shape());
        for (i, (a, b)) in healed.data().iter().zip(oracle.data()).enumerate() {
            prop_assert!(
                (a - b).abs() < 1e-9,
                "healed cache diverges from the batch oracle at flat index {} ({} vs {})",
                i, a, b
            );
        }
    }
}

/// Satellite regression: a series with a hidden *interior* range and an
/// observed tail starts with its watermark past the gap, so `append` can
/// never backfill it — `fill_range` records the late arrival, eagerly matches
/// the batch oracle within local reach, and the rest heals lazily.
#[test]
fn interior_gap_backfills_via_fill_range_and_matches_the_oracle() {
    let fix = fixture();
    let mut obs = fix.obs.clone();
    obs.hide_range(1, 60, 80);
    // Observed tail after the gap: the watermark sits at the series end.
    obs.record_range(1, T_TRAIN - 10, &fix.truth.series(1)[T_TRAIN - 10..T_TRAIN]);
    let engine = ImputationEngine::new(frozen(fix), obs.clone()).unwrap();
    let oracle_model = frozen(fix);
    assert_eq!(engine.watermark(1).unwrap(), T_TRAIN, "tail observation pins the watermark");

    // The gap is beyond append's reach (the watermark already passed it) ...
    let before = engine.observed();
    assert!(before.available.series(1)[60..80].iter().all(|&a| !a));
    // ... but fill_range records it.
    let late = &fix.truth.series(1)[60..80];
    let report = engine.fill_range(1, 60, late).unwrap();
    assert_eq!(report.recorded, (60, 80));
    assert_eq!(engine.watermark(1).unwrap(), T_TRAIN, "interior backfill must not move the cursor");
    assert_eq!(engine.query(1, 60, 80).unwrap(), late.to_vec());

    // Eager contract: within ±w of the filled range (own series) and inside
    // the range (siblings), the cache matches a batch re-impute of the
    // current state.
    let current = engine.observed();
    let oracle = oracle_model.impute(&current);
    let cache = engine.cached_values();
    let w = engine.grid().window_len();
    for series in 0..SERIES {
        let avail = current.available.series(series);
        let range = if series == 1 { 60 - w..(80 + w).min(T_TRAIN) } else { 60..80 };
        for t in range {
            if !avail[t] {
                let (got, want) = (cache.series(series)[t], oracle.series(series)[t]);
                assert!(
                    (got - want).abs() < 1e-9,
                    "series {series} t={t}: engine {got} vs oracle {want}"
                );
            }
        }
    }

    // Everything else heals on touch.
    for s in 0..SERIES {
        engine.query(s, 0, T_TRAIN).unwrap();
    }
    let healed = engine.cached_values();
    let max_diff = healed
        .data()
        .iter()
        .zip(oracle.data())
        .map(|(&a, &b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(max_diff < 1e-9, "healed cache diverges from the oracle by {max_diff}");
    assert_eq!(engine.stats().backfills, 1);
}

/// Snapshots of a grown deployment persist the live length next to the
/// trained one; restore geometry-checks both and reproduces the serving state.
#[test]
fn grown_state_snapshots_and_restores_at_the_live_length() {
    let fix = fixture();
    let engine = ImputationEngine::new(frozen(fix), fix.obs.clone()).unwrap();
    let target = T_TRAIN + 20;
    for s in 0..SERIES {
        let wm = engine.watermark(s).unwrap();
        engine.append(s, &fix.truth.series(s)[wm..target]).unwrap();
    }
    let grown_obs = engine.observed();
    assert_eq!(grown_obs.t_len(), target);

    let source = frozen(fix);
    let snap = ServeSnapshot::capture(source.model(), &grown_obs);
    assert_eq!(snap.t_len, T_TRAIN, "trained length persists");
    assert_eq!(snap.live_t_len, target, "live length persists");
    let back = ServeSnapshot::from_json(&snap.to_json()).unwrap();

    // Geometry is checked against the *live* length now.
    assert!(matches!(back.restore(&fix.obs), Err(ServeError::Geometry(_))));
    let restored = back.restore(&grown_obs).unwrap();
    assert_eq!(restored.t_len(), T_TRAIN, "model rebuilds at the trained length");

    // A re-hydrated engine over the grown state serves exactly what the
    // original (fully healed) engine serves.
    let engine2 = ImputationEngine::new(restored, grown_obs.clone()).unwrap();
    engine2.warm_up();
    for s in 0..SERIES {
        engine.query(s, 0, engine.live_len()).unwrap();
    }
    assert_eq!(engine2.cached_values(), engine.cached_values());
}

/// Growth keeps the workspace determinism guarantee: the same append/query
/// history produces a bitwise-identical cache at any worker-thread count.
#[test]
fn grown_serving_is_bitwise_thread_invariant() {
    let _pool = POOL_LOCK.lock().unwrap();
    let fix = fixture();
    let run = |threads: usize| -> Vec<u64> {
        mvi_parallel::configure_threads(threads);
        let engine = ImputationEngine::new(frozen(fix), fix.obs.clone()).unwrap();
        for s in 0..SERIES {
            let wm = engine.watermark(s).unwrap();
            engine.append(s, &fix.truth.series(s)[wm..T_FULL]).unwrap();
        }
        let live = engine.live_len();
        for s in 0..SERIES {
            engine.query(s, 0, live).unwrap();
        }
        let out = engine.cached_values();
        mvi_parallel::configure_threads(0); // restore the default budget
        out.data().iter().map(|v| v.to_bits()).collect()
    };
    let serial = run(1);
    for threads in [2usize, 4] {
        assert_eq!(
            serial,
            run(threads),
            "grown serving with {threads} worker threads diverged bitwise from 1 thread"
        );
    }
}
