//! End-to-end tests of the online serving path: train once, snapshot, serve —
//! streaming appends, micro-batched queries, and equivalence with the batch
//! imputer.

use deepmvi::{DeepMviConfig, DeepMviModel};
use mvi_data::dataset::ObservedDataset;
use mvi_data::generators::{generate_with_shape, DatasetName};
use mvi_data::scenarios::Scenario;
use mvi_data::windows::WindowGrid;
use mvi_serve::{ImputationEngine, ImputeRequest, MicroBatcher, ServeSnapshot};
use mvi_tensor::Tensor;
use std::sync::Arc;

const SERIES: usize = 4;
const T: usize = 240;
const STREAM_START: usize = 180;

/// A dataset whose suffix `[STREAM_START, T)` is a streaming future: hidden at
/// training time, appended series-by-series while serving. Returns the ground
/// truth (the stream source), the observed view, and a trained model.
fn streaming_fixture() -> (Tensor, ObservedDataset, DeepMviModel) {
    let ds = generate_with_shape(DatasetName::Chlorine, &[SERIES], T, 11);
    let inst = Scenario::mcar(1.0).apply(&ds, 5);
    let mut obs = inst.observed();
    for s in 0..SERIES {
        obs.hide_range(s, STREAM_START, T);
    }
    let cfg = DeepMviConfig { max_steps: 25, ..DeepMviConfig::tiny() };
    let mut model = DeepMviModel::new(&cfg, &obs);
    model.fit(&obs);
    (ds.values, obs, model)
}

/// The positions `append` promises to refresh: missing entries of the appended
/// series from one window before the append onwards, plus missing entries of
/// sibling series inside the appended range.
fn affected_positions(
    grid: WindowGrid,
    obs: &ObservedDataset,
    s: usize,
    wm: usize,
    end: usize,
) -> Vec<(usize, usize)> {
    let tail = grid.tail_windows_for(wm);
    let (tail_lo, _) = grid.bounds(tail.start);
    let mut out = Vec::new();
    for series in 0..obs.n_series() {
        let avail = obs.available.series(series);
        let range = if series == s { tail_lo..grid.t_len() } else { wm..end };
        for t in range {
            if !avail[t] {
                out.push((series, t));
            }
        }
    }
    out
}

#[test]
fn streaming_append_matches_full_reimpute_on_affected_tail_windows() {
    let (truth, obs, model) = streaming_fixture();
    let grid = model.grid();
    let frozen = model.freeze();
    let engine = ImputationEngine::new(
        ServeSnapshot::capture(frozen.model(), &obs).restore(&obs).unwrap(),
        obs.clone(),
    )
    .unwrap();

    // Stream the hidden future in, in uneven chunks, round-robin over series.
    // Watermarks come from the engine: an MCAR block adjacent to the hidden
    // suffix makes some series' streams start before STREAM_START.
    let chunks = [7usize, 20, 13, 16];
    let mut round = 0usize;
    let mut appends = 0usize;
    while (0..SERIES).any(|s| engine.watermark(s).unwrap() < T) {
        for s in 0..SERIES {
            let wm = engine.watermark(s).unwrap();
            if wm >= T {
                continue;
            }
            let len = chunks[round % chunks.len()].min(T - wm);
            let report = engine.append(s, &truth.series(s)[wm..wm + len]).unwrap();
            assert_eq!(report.recorded, (wm, wm + len));
            appends += 1;

            // A full batch re-impute over the *current* observed state is the
            // oracle; the engine must match it on every affected position.
            let current = engine.observed();
            let oracle = frozen.impute(&current);
            let cache = engine.cached_values();
            for (series, t) in affected_positions(grid, &current, s, wm, wm + len) {
                let got = cache.series(series)[t];
                let want = oracle.series(series)[t];
                assert!(
                    (got - want).abs() < 1e-9,
                    "series {series} t={t} after append to {s}@{wm}: engine {got} vs oracle {want}"
                );
            }
        }
        round += 1;
    }
    assert!(appends >= SERIES * 3, "stream drained in too few appends to exercise the tail path");
    for s in 0..SERIES {
        assert_eq!(engine.watermark(s).unwrap(), T);
    }
}

#[test]
fn lazily_healed_cache_converges_to_the_batch_imputer() {
    let (truth, obs, model) = streaming_fixture();
    let frozen = model.freeze();
    let engine = ImputationEngine::new(
        ServeSnapshot::capture(frozen.model(), &obs).restore(&obs).unwrap(),
        obs.clone(),
    )
    .unwrap();

    // Append a burst to one series only, then sweep every series with queries:
    // stale windows (including pre-append windows invalidated through the
    // attention context) heal on touch.
    engine.append(2, &truth.series(2)[STREAM_START..STREAM_START + 30]).unwrap();
    for s in 0..SERIES {
        engine.query(s, 0, T).unwrap();
    }
    let oracle = frozen.impute(&engine.observed());
    let cache = engine.cached_values();
    let max_diff =
        cache.data().iter().zip(oracle.data()).map(|(&a, &b)| (a - b).abs()).fold(0.0f64, f64::max);
    assert!(max_diff < 1e-12, "healed cache diverges from batch impute by {max_diff}");
}

#[test]
fn micro_batched_and_direct_queries_agree() {
    let (_, obs, model) = streaming_fixture();
    let engine = Arc::new(ImputationEngine::new(model.freeze(), obs.clone()).unwrap());

    // Direct (unbatched) answers first; the batched and concurrent runs must
    // reproduce them from the same engine.
    let requests: Vec<ImputeRequest> = (0..SERIES)
        .flat_map(|s| {
            [
                ImputeRequest { s, start: 0, end: T / 2 },
                ImputeRequest { s, start: T / 4, end: T },
                ImputeRequest { s, start: T - 30, end: T },
            ]
        })
        .collect();
    let direct: Vec<Vec<f64>> =
        requests.iter().map(|r| engine.query(r.s, r.start, r.end).unwrap()).collect();

    let batched = engine.query_batch(&requests);
    for ((r, d), b) in requests.iter().zip(&direct).zip(batched) {
        assert_eq!(&b.unwrap(), d, "request {r:?} diverged between direct and batched");
    }

    // And through concurrent clients of the micro-batcher.
    let batcher = MicroBatcher::spawn(Arc::clone(&engine), 16);
    let mut handles = Vec::new();
    for (i, r) in requests.iter().enumerate() {
        let client = batcher.client();
        let r = *r;
        handles.push(std::thread::spawn(move || (i, client.query(r.s, r.start, r.end))));
    }
    for h in handles {
        let (i, got) = h.join().unwrap();
        assert_eq!(got.unwrap(), direct[i], "request {i} diverged through the batcher");
    }
}

#[test]
fn snapshot_roundtrip_serves_identical_values() {
    let (_, obs, model) = streaming_fixture();
    let snap = ServeSnapshot::capture(&model, &obs);
    let json = snap.to_json();
    let expected = model.impute(&obs);

    let restored = ServeSnapshot::from_json(&json).unwrap();
    let engine = ImputationEngine::new(restored.restore(&obs).unwrap(), obs.clone()).unwrap();
    engine.warm_up();
    assert_eq!(engine.cached_values(), expected, "restored engine diverged from trained model");
    assert_eq!(restored.shared_std, snap.shared_std, "shared std lost in the snapshot roundtrip");
}
