//! End-to-end tests of the bounded-memory retention ring and warm-restart
//! snapshots (PR 5): a long-lived stream keeps resident storage flat while
//! logical time advances, queries against evicted time fail typed, the
//! retained cache matches a **truncated batch re-impute** of the retained
//! span to 1e-9, windows whose rolling horizon lies inside the ring match the
//! **unbounded** engine bitwise, and a v3 snapshot with the warm-cache
//! section restarts an engine that serves cached queries with zero forward
//! passes.
//!
//! The trained model is built **once** per process (training is the expensive
//! step); every test restores its own engine from the shared snapshot.

use deepmvi::{DeepMviConfig, DeepMviModel, FrozenModel};
use mvi_data::dataset::Dataset;
use mvi_data::generators::{generate_with_shape, DatasetName};
use mvi_data::scenarios::Scenario;
use mvi_serve::{ImputationEngine, ServeError, ServeSnapshot};
use mvi_tensor::Tensor;
use proptest::prelude::*;
use std::sync::{Mutex, OnceLock};

const SERIES: usize = 3;
/// Series length the model trains on.
const T_TRAIN: usize = 140;
/// Ground truth extends this far past training — the stream source.
const T_FULL: usize = 700;

/// Guards the process-global worker-thread budget (see `tests/determinism.rs`
/// for why thread-flipping tests must serialize).
static POOL_LOCK: Mutex<()> = Mutex::new(());

struct Fixture {
    /// Ground truth over the full horizon `[0, T_FULL)`.
    truth: Tensor,
    snapshot_json: String,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let full = generate_with_shape(DatasetName::Chlorine, &[SERIES], T_FULL, 23);
        let trained_ds =
            Dataset::new("retention", full.dims.clone(), full.values.truncated_time(T_TRAIN));
        let inst = Scenario::mcar(1.0).apply(&trained_ds, 7);
        let obs = inst.observed();
        let cfg = DeepMviConfig { max_steps: 20, ..DeepMviConfig::tiny() };
        let mut model = DeepMviModel::new(&cfg, &obs);
        model.fit(&obs);
        let snapshot_json = ServeSnapshot::capture(&model, &obs).to_json();
        Fixture { truth: full.values, snapshot_json }
    })
}

/// The trained-length observed view the model was fit on (rebuilt per call —
/// the fixture snapshot only keeps the JSON).
fn trained_obs(fix: &Fixture) -> mvi_data::dataset::ObservedDataset {
    let full_truth = fix.truth.truncated_time(T_TRAIN);
    let dims = vec![mvi_data::dataset::DimSpec::indexed("series", "s", SERIES)];
    let ds = Dataset::new("retention", dims, full_truth);
    Scenario::mcar(1.0).apply(&ds, 7).observed()
}

/// A fresh frozen model from the shared snapshot.
fn frozen(fix: &Fixture) -> FrozenModel {
    ServeSnapshot::from_json(&fix.snapshot_json)
        .expect("fixture snapshot parses")
        .restore(&trained_obs(fix))
        .expect("fixture snapshot restores")
}

/// Streams the ground truth round-robin (`chunk`-sized appends) until every
/// series' watermark reaches `target`.
fn stream_to(engine: &ImputationEngine, truth: &Tensor, target: usize, chunk: usize) {
    loop {
        let mut all_done = true;
        for s in 0..SERIES {
            let wm = engine.watermark(s).expect("watermark");
            if wm >= target {
                continue;
            }
            all_done = false;
            let end = (wm + chunk).min(target);
            engine.append(s, &truth.series(s)[wm..end]).expect("append");
        }
        if all_done {
            return;
        }
    }
}

/// The CI retention smoke: stream a long-lived feed through a bounded engine
/// and assert resident storage never exceeds the ring cap while queries keep
/// serving the retained tail — this exact flow grew memory without bound
/// before the retention ring existed.
#[test]
fn retention_smoke_long_stream_keeps_storage_flat() {
    let fix = fixture();
    let retention = 80usize;
    let engine =
        ImputationEngine::with_retention(frozen(fix), trained_obs(fix), retention).unwrap();
    let cap = engine.ring_capacity().expect("bounded engine");
    let w = engine.grid().window_len();
    assert_eq!(cap, w * (retention.div_ceil(w) + 1));

    stream_to(&engine, &fix.truth, T_FULL, 11);
    assert_eq!(engine.live_len(), T_FULL, "logical time reaches the full stream");
    assert!(engine.storage_capacity() <= cap, "resident storage exceeded the ring cap");
    let base = engine.retained_start();
    assert!(T_FULL - base >= retention, "retention floor violated");
    assert!(T_FULL - base <= cap, "retained span exceeded the ring cap");
    assert!(base.is_multiple_of(w), "ring origin must stay window-aligned");
    assert!(engine.stats().evictions > 0, "a 5x-retention stream must evict");

    // The retained tail serves appended observations verbatim; evicted time
    // is a typed error on the exact boundary.
    let tail = engine.query(0, base, T_FULL).unwrap();
    assert_eq!(tail, fix.truth.series(0)[base..T_FULL].to_vec());
    assert!(matches!(
        engine.query(0, base - 1, T_FULL),
        Err(ServeError::Evicted { retained_start, .. }) if retained_start == base
    ));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Acceptance property: stream random-sized chunks through a ring whose
    /// retention is *smaller than the trained span*; after a healing sweep
    /// the entire retained cache matches a batch re-impute of the retained
    /// span as a standalone dataset (the truncated-batch oracle) to 1e-9.
    #[test]
    fn retained_cache_matches_truncated_batch_reimpute(
        chunks in proptest::collection::vec(1usize..29, 4..9),
        retention in 45usize..100,
    ) {
        let fix = fixture();
        let engine =
            ImputationEngine::with_retention(frozen(fix), trained_obs(fix), retention).unwrap();
        let oracle_model = frozen(fix);

        for (i, &len) in chunks.iter().enumerate() {
            let s = i % SERIES;
            let wm = engine.watermark(s).unwrap();
            let end = (wm + len).min(T_FULL);
            if end <= wm {
                continue;
            }
            let report = engine.append(s, &fix.truth.series(s)[wm..end]).unwrap();
            prop_assert!(report.live_len - report.retained_start
                <= engine.ring_capacity().unwrap());
        }

        // Heal everything, then compare against the truncated oracle.
        let (base, live) = (engine.retained_start(), engine.live_len());
        for s in 0..SERIES {
            engine.query(s, base, live).unwrap();
        }
        let retained = engine.observed();
        prop_assert_eq!(retained.t_len(), live - base);
        let oracle = oracle_model.impute(&retained);
        let cache = engine.cached_values();
        prop_assert_eq!(cache.shape(), oracle.shape());
        for (i, (a, b)) in cache.data().iter().zip(oracle.data()).enumerate() {
            prop_assert!(
                (a - b).abs() < 1e-9,
                "retained cache diverges from the truncated-batch oracle at flat index {} \
                 ({} vs {})", i, a, b
            );
        }
    }

    /// In-retention imputations match the *unbounded* path: windows whose
    /// rolling attention horizon lies entirely inside the ring see identical
    /// forward inputs whether or not older data was evicted, so the ring
    /// engine reproduces the unbounded engine **bitwise** there (1e-9 is the
    /// stated contract; equality of bits is what actually holds at a fixed
    /// thread count).
    #[test]
    fn deep_in_retention_windows_match_the_unbounded_engine_bitwise(
        extra_windows in 2usize..7,
        chunk in 5usize..17,
    ) {
        let fix = fixture();
        let w = frozen(fix).grid().window_len();
        let horizon_w = T_TRAIN.div_ceil(w);
        // Retention holds a full trained horizon plus a few windows, so the
        // newest windows' context never touches evicted time.
        let retention = (horizon_w + extra_windows) * w;
        let ring =
            ImputationEngine::with_retention(frozen(fix), trained_obs(fix), retention).unwrap();
        let unbounded = ImputationEngine::new(frozen(fix), trained_obs(fix)).unwrap();

        let target = T_TRAIN + 3 * retention.min(T_FULL - T_TRAIN);
        let target = target.min(T_FULL);
        stream_to(&ring, &fix.truth, target, chunk);
        stream_to(&unbounded, &fix.truth, target, chunk);
        prop_assert!(ring.stats().evictions > 0, "stream must push the ring");

        // Windows at logical index >= base_w + horizon_w - 1 have their whole
        // horizon inside the ring.
        let base = ring.retained_start();
        let deep_start = (base / w + horizon_w - 1) * w;
        prop_assert!(deep_start < target, "fixture leaves no deep-in-retention span");
        let a = ring.query(1, deep_start, target).unwrap();
        let b = unbounded.query(1, deep_start, target).unwrap();
        prop_assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(&b).enumerate() {
            prop_assert!(
                x.to_bits() == y.to_bits(),
                "ring vs unbounded diverged at t={} ({} vs {})", deep_start + i, x, y
            );
        }
    }
}

/// Eviction interacts with `fill_range`: an interior gap that is still
/// retained backfills normally (even right at the ring origin), but once an
/// append evicts the gap's window, the late data has nowhere to land and the
/// backfill fails typed.
#[test]
fn append_evicting_a_window_defeats_a_pending_fill_range() {
    let fix = fixture();
    let mut obs = trained_obs(fix);
    // An interior gap with an observed tail: the watermark starts at T_TRAIN.
    obs.hide_range(1, 40, 60);
    obs.record_range(1, T_TRAIN - 5, &fix.truth.series(1)[T_TRAIN - 5..T_TRAIN]);
    let retention = 100usize;
    let engine = ImputationEngine::with_retention(frozen(fix), obs, retention).unwrap();
    let w = engine.grid().window_len();
    let cap = engine.ring_capacity().unwrap();
    // Construction already trimmed T_TRAIN down to the cap; the gap at 40..60
    // is in evicted time iff base > 40. Pick the scenario deliberately:
    let base0 = engine.retained_start();
    assert_eq!(base0, T_TRAIN - cap);
    assert!(base0 < 40, "gap must start retained for this scenario");

    // While retained, the gap backfills fine — including a range starting
    // exactly at the ring origin.
    let at_origin = engine.fill_range(1, 40, &fix.truth.series(1)[40..44]).unwrap();
    assert_eq!(at_origin.recorded, (40, 44));

    // Stream until eviction passes the gap's window.
    let mut target = T_TRAIN;
    while engine.retained_start() <= 60 {
        target += w;
        assert!(target <= T_FULL, "stream source exhausted");
        stream_to(&engine, &fix.truth, target, w);
    }
    let base = engine.retained_start();
    assert!(base > 60);
    // The remaining late arrival now targets evicted time: typed refusal,
    // not silent loss or wrong data.
    assert!(matches!(
        engine.fill_range(1, 44, &fix.truth.series(1)[44..60]),
        Err(ServeError::Evicted { retained_start, .. }) if retained_start == base
    ));
    // A backfill at the *current* origin still works: the boundary is exact.
    let healed = engine.fill_range(0, base, &fix.truth.series(0)[base..base + 2]).unwrap();
    assert_eq!(healed.recorded, (base, base + 2));
}

/// Warm-restart round-trip of a *ring* engine: the v3 snapshot preserves the
/// ring offsets (origin, retention, watermarks), the restored engine answers
/// previously-cached queries with zero forward passes, and the ring keeps
/// sliding — later appends evict from where the old process left off.
#[test]
fn ring_snapshot_roundtrip_preserves_offsets_and_serves_without_recompute() {
    let fix = fixture();
    let retention = 90usize;
    let engine =
        ImputationEngine::with_retention(frozen(fix), trained_obs(fix), retention).unwrap();
    stream_to(&engine, &fix.truth, 400, 13);
    let (base, live) = (engine.retained_start(), engine.live_len());
    assert!(base > 0);
    // Heal the whole retained span so the snapshot cache is fully fresh.
    let served: Vec<Vec<f64>> = (0..SERIES).map(|s| engine.query(s, base, live).unwrap()).collect();

    let json = engine.snapshot().to_json();
    let snap = ServeSnapshot::from_json(&json).expect("v3 ring snapshot parses");
    assert_eq!(snap.retained_start, base, "ring origin persists");
    assert_eq!(snap.retention, Some(retention), "retention config persists");
    assert_eq!(snap.live_t_len, live);
    assert_eq!(snap.t_len, T_TRAIN);

    let restored = ImputationEngine::from_snapshot(&snap).expect("warm restart");
    assert_eq!(restored.retained_start(), base);
    assert_eq!(restored.retention(), Some(retention));
    assert_eq!(restored.live_len(), live);
    for s in 0..SERIES {
        assert_eq!(restored.watermark(s).unwrap(), engine.watermark(s).unwrap());
        assert_eq!(&restored.query(s, base, live).unwrap(), &served[s], "series {s} diverged");
    }
    assert_eq!(restored.stats().windows_computed, 0, "warm restart must not recompute");
    assert!(matches!(restored.query(0, base - 1, live), Err(ServeError::Evicted { .. })));

    // The restarted ring keeps sliding exactly like the original.
    stream_to(&restored, &fix.truth, 500, 13);
    stream_to(&engine, &fix.truth, 500, 13);
    assert_eq!(restored.retained_start(), engine.retained_start());
    assert_eq!(restored.live_len(), engine.live_len());
    let (b2, l2) = (restored.retained_start(), restored.live_len());
    for s in 0..SERIES {
        assert_eq!(
            restored.query(s, b2, l2).unwrap(),
            engine.query(s, b2, l2).unwrap(),
            "post-restart streaming diverged on series {s}"
        );
    }
}

/// The ring path keeps the workspace determinism guarantee: the same
/// append/query history produces a bitwise-identical retained cache at any
/// worker-thread count.
#[test]
fn ring_serving_is_bitwise_thread_invariant() {
    let _pool = POOL_LOCK.lock().unwrap();
    let fix = fixture();
    let run = |threads: usize| -> Vec<u64> {
        mvi_parallel::configure_threads(threads);
        let engine = ImputationEngine::with_retention(frozen(fix), trained_obs(fix), 75).unwrap();
        stream_to(&engine, &fix.truth, 450, 9);
        let (base, live) = (engine.retained_start(), engine.live_len());
        for s in 0..SERIES {
            engine.query(s, base, live).unwrap();
        }
        let out = engine.cached_values();
        mvi_parallel::configure_threads(0); // restore the default budget
        out.data().iter().map(|v| v.to_bits()).collect()
    };
    let serial = run(1);
    for threads in [2usize, 4] {
        assert_eq!(
            serial,
            run(threads),
            "ring serving with {threads} worker threads diverged bitwise from 1 thread"
        );
    }
}
