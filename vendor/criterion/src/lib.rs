//! Offline shim for the subset of the `criterion` API used by the bench
//! targets (`harness = false` binaries).
//!
//! The build environment has no crates.io access, so this crate provides a
//! small wall-clock runner with criterion's API shape: it warms up briefly,
//! runs `sample_size` timed samples, and prints median/mean per benchmark in
//! a `name    time: [..]`-style line. There is no statistical analysis,
//! HTML report, or baseline comparison — for machine-readable kernel numbers
//! use `cargo run -p mvi-bench --release --bin kernel_bench` instead.

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup (ignored by the shim's timing model).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Re-run setup for every iteration.
    PerIteration,
}

/// Identifier for parameterized benchmarks.
#[derive(Clone, Debug)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        Self(format!("{}/{}", name.into(), parameter))
    }

    /// Builds an id from the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        Self(parameter.to_string())
    }
}

/// Times closures; handed to benchmark definitions.
pub struct Bencher {
    samples: usize,
    results: Vec<Duration>,
}

impl Bencher {
    /// Times `routine`, once per sample.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Brief warmup so one-shot allocations and caches settle.
        let _ = routine();
        for _ in 0..self.samples {
            let start = Instant::now();
            let out = routine();
            self.results.push(start.elapsed());
            drop(out);
        }
    }

    /// Times `routine` on fresh inputs built by `setup` (setup untimed).
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let _ = routine(setup());
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            self.results.push(start.elapsed());
            drop(out);
        }
    }
}

fn report(name: &str, results: &[Duration]) {
    if results.is_empty() {
        println!("{name:<50} (no samples)");
        return;
    }
    let mut sorted: Vec<Duration> = results.to_vec();
    sorted.sort();
    let median = sorted[sorted.len() / 2];
    let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
    println!("{name:<50} time: [median {median:>12.3?}  mean {mean:>12.3?}  n={}]", sorted.len());
}

/// Top-level driver with criterion's API shape.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    /// Defines and immediately runs one benchmark.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let mut b = Bencher { samples: self.sample_size, results: Vec::new() };
        f(&mut b);
        report(&name.into(), &b.results);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _parent: self }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        f: impl FnOnce(&mut Bencher),
    ) -> &mut Self {
        let mut b = Bencher { samples: self.sample_size, results: Vec::new() };
        f(&mut b);
        report(&format!("{}/{}", self.name, name.into()), &b.results);
        self
    }

    /// Runs one parameterized benchmark within the group.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let mut b = Bencher { samples: self.sample_size, results: Vec::new() };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.0), &b.results);
        self
    }

    /// Ends the group (marker only in the shim).
    pub fn finish(self) {}
}

/// Bundles benchmark functions under a group name, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
