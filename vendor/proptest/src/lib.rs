//! Offline shim for the subset of the `proptest` API used by this workspace.
//!
//! The build environment has no crates.io access, so this crate implements a
//! small deterministic property-testing core: strategies are samplers over a
//! seeded PRNG, the [`proptest!`] macro runs each property for
//! `ProptestConfig::cases` sampled inputs, and [`prop_assert!`] /
//! [`prop_assert_eq!`] report the failing case. There is no shrinking — a
//! failure prints the case index and message; reproduce by re-running (the
//! sampling is deterministic per test body).

/// Deterministic SplitMix64 generator driving all strategies.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A fixed-seed generator; every test run samples the same cases.
    pub fn deterministic() -> Self {
        Self { state: 0x5EED_CAFE_F00D_D00D }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A value generator. The shim's strategies sample directly (no shrink trees).
pub trait Strategy {
    /// The type of generated values.
    type Value;
    /// Samples one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + rng.below((self.end - self.start) as u64) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                lo + rng.below((hi - lo) as u64 + 1) as $t
            }
        }
    )*};
}
impl_int_range!(usize, u8, u32, u64, i32, i64);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

/// Strategy for a constant value (proptest's `Just`).
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// Samples from the full domain of `Self`.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u32, u64, usize, i32, i64);

/// Strategy returned by [`any`].
pub struct Any<T>(core::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Whole-domain strategy for `T` (e.g. `any::<bool>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(core::marker::PhantomData)
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};

    /// Sizes accepted by [`vec()`](crate::collection::vec): an exact `usize` or a `Range<usize>`.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi_exclusive: n + 1 }
        }
    }
    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { lo: r.start, hi_exclusive: r.end }
        }
    }
    impl From<core::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: core::ops::RangeInclusive<usize>) -> Self {
            Self { lo: *r.start(), hi_exclusive: *r.end() + 1 }
        }
    }

    /// Strategy producing `Vec`s of `element` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy over an element strategy and a size (exact or range).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_exclusive - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// A failed property case (proptest's `TestCaseError`, reduced to a message).
#[derive(Clone, Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Builds a failure with the given reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        Self(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<String> for TestCaseError {
    fn from(s: String) -> Self {
        Self(s)
    }
}

/// Per-property configuration (only `cases` is honoured by the shim).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

impl ProptestConfig {
    /// Config running `cases` sampled inputs.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body for every sampled case.
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr) $($(#[$meta:meta])* fn $name:ident(
        $($arg:ident in $strat:expr),+ $(,)?
    ) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic();
                for case in 0..cfg.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(msg) = outcome {
                        panic!("property `{}` failed on case {}: {}",
                               stringify!($name), case, msg);
                    }
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Asserts inside a [`proptest!`] body; failures abort only the current case
/// loop with a message (no shrinking in the shim).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!("assertion failed: {}", stringify!($cond))));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+)));
        }
    };
}

/// Skips the current case when the assumption does not hold (the shim treats
/// a skipped case as passed rather than resampling).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Ok(());
        }
    };
}

/// Equality assertion inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let l = $left;
        let r = $right;
        if l != r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(::std::format!(
                "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

pub mod prelude {
    //! One-stop imports mirroring `proptest::prelude`.
    pub use crate::collection;
    pub use crate::{any, Arbitrary, Just, ProptestConfig, Strategy, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, proptest};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..9, y in -2.0f64..2.0, b in any::<bool>()) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y), "y out of range: {}", y);
            prop_assert!(b == b);
        }

        #[test]
        fn vec_sizes_and_map(v in collection::vec(0u64..5, 2..7)) {
            prop_assert!(v.len() >= 2 && v.len() < 7);
            prop_assert!(v.iter().all(|&x| x < 5));
        }
    }

    proptest! {
        #[test]
        fn default_config_and_prop_map(n in (1usize..4).prop_map(|x| x * 10)) {
            prop_assert_eq!(n % 10, 0);
        }
    }
}
