//! Offline shim for the subset of the `rand` 0.8 API used by this workspace.
//!
//! The build environment has no access to crates.io, so the workspace vendors a
//! minimal, dependency-free implementation: [`rngs::StdRng`] is xoshiro256++
//! seeded through SplitMix64 (not the `rand` crate's ChaCha12, so sequences
//! differ from upstream, but every use in this repo only relies on seeded
//! determinism and reasonable statistical quality, not on exact streams).

/// Uniform sampling of a value from a range, used by [`Rng::gen_range`].
pub trait UniformRange {
    /// The sampled value type.
    type Output;
    /// Draws one value uniformly from `self`.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (reduce_u64(rng.next_u64(), span) as $t)
            }
        }
        impl UniformRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (reduce_u64(rng.next_u64(), span + 1) as $t)
            }
        }
    )*};
}
impl_uniform_int!(usize, u64, u32, i64);

impl UniformRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + (self.end - self.start) * unit_f64(rng.next_u64())
    }
}

/// Multiply-shift range reduction (Lemire); bias is ≤ 2⁻⁶⁴·span, irrelevant here.
#[inline]
fn reduce_u64(x: u64, span: u64) -> u64 {
    ((x as u128 * span as u128) >> 64) as u64
}

/// The top 53 bits of `x` as a uniform `f64` in `[0, 1)`.
#[inline]
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Types samplable by [`Rng::gen`] from their "standard" distribution.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        unit_f64(rng.next_u64())
    }
}
impl Standard for bool {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for u64 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> u64 {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn sample_standard<R: Rng + ?Sized>(rng: &mut R) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

/// Minimal stand-in for `rand::Rng`.
pub trait Rng {
    /// The raw 64-bit generator output every other method is derived from.
    fn next_u64(&mut self) -> u64;

    /// Samples from the standard distribution of `T` (`f64` in `[0,1)`, fair `bool`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T: UniformRange>(&mut self, range: T) -> T::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Minimal stand-in for `rand::SeedableRng` (only `seed_from_u64` is used here).
pub trait SeedableRng: Sized {
    /// Deterministically builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{Rng, SeedableRng};

    /// xoshiro256++ (Blackman & Vigna), seeded via SplitMix64.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self { s: [next(), next(), next(), next()] }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }
    }
}

pub mod seq {
    //! Slice helpers.

    use super::Rng;

    /// Minimal stand-in for `rand::seq::SliceRandom` (shuffle only).
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic_and_distinct() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(1);
        let mut c = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_range(5usize..17);
            assert!((5..17).contains(&x));
            let y = rng.gen_range(2usize..=4);
            assert!((2..=4).contains(&y));
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn unit_f64_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice sorted (astronomically unlikely)");
    }
}
