//! Offline shim for the subset of `serde` this workspace uses.
//!
//! The build environment has no crates.io access, so instead of the real
//! serde's visitor architecture this shim serializes through an owned
//! [`Value`] tree (the JSON data model). `#[derive(Serialize, Deserialize)]`
//! is provided by the sibling `serde_derive` shim and generates impls of the
//! two traits below; `serde_json` renders/parses `Value` as JSON text. The
//! enum representation matches serde's external tagging (unit variants as
//! strings, struct variants as one-entry maps), so snapshots stay readable.

pub use serde_derive::{Deserialize, Serialize};

/// Owned tree in the JSON data model.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null` (also used for non-finite floats, like real `serde_json`).
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (all numbers in this workspace fit `f64` exactly).
    Num(f64),
    /// JSON string.
    Str(String),
    /// JSON array.
    Seq(Vec<Value>),
    /// JSON object, as ordered key/value pairs.
    Map(Vec<(String, Value)>),
}

/// Deserialization error: a human-readable path/description.
#[derive(Clone, Debug)]
pub struct Error(pub String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl Value {
    /// Looks up `name` in a [`Value::Map`].
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        match self {
            Value::Map(entries) => entries
                .iter()
                .find(|(k, _)| k == name)
                .map(|(_, v)| v)
                .ok_or_else(|| Error(format!("missing field `{name}`"))),
            other => Err(Error(format!("expected map with field `{name}`, got {other:?}"))),
        }
    }
}

/// Converts `self` into a [`Value`] tree.
pub trait Serialize {
    /// Serializes into the JSON data model.
    fn serialize(&self) -> Value;
}

/// Rebuilds `Self` from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes from the JSON data model.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error(format!("expected bool, got {other:?}"))),
        }
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(Error(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::Num(*self)
    }
}
impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Num(n) => Ok(*n),
            Value::Null => Ok(f64::NAN),
            other => Err(Error(format!("expected number, got {other:?}"))),
        }
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Num(n) if n.fract() == 0.0 => Ok(*n as $t),
                    other => Err(Error(format!("expected integer, got {other:?}"))),
                }
            }
        }
    )*};
}
impl_int!(usize, u64, u32, u8, i64, i32);

// ---------------------------------------------------------------------------
// Container impls
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::deserialize).collect(),
            other => Err(Error(format!("expected sequence, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(x) => x.serialize(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize(other).map(Some),
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize(&self) -> Value {
        Value::Seq(vec![self.0.serialize(), self.1.serialize()])
    }
}
impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) if items.len() == 2 => {
                Ok((A::deserialize(&items[0])?, B::deserialize(&items[1])?))
            }
            other => Err(Error(format!("expected 2-tuple, got {other:?}"))),
        }
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn serialize(&self) -> Value {
        Value::Seq(vec![self.0.serialize(), self.1.serialize(), self.2.serialize()])
    }
}
impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) if items.len() == 3 => Ok((
                A::deserialize(&items[0])?,
                B::deserialize(&items[1])?,
                C::deserialize(&items[2])?,
            )),
            other => Err(Error(format!("expected 3-tuple, got {other:?}"))),
        }
    }
}
