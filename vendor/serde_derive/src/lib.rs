//! Hand-rolled `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! offline `serde` shim.
//!
//! The build environment has no crates.io access, so `syn`/`quote` are not
//! available; this crate parses the derive input directly from
//! [`proc_macro::TokenTree`]s. Supported shapes — which cover every derived
//! type in this workspace — are non-generic structs with named fields and
//! non-generic enums whose variants are unit or struct-like. Anything else
//! panics with a clear message at expansion time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct Variant {
    name: String,
    /// `None` for unit variants, field names for struct variants.
    fields: Option<Vec<String>>,
}

enum Kind {
    Struct(Vec<String>),
    Enum(Vec<Variant>),
}

struct Input {
    name: String,
    kind: Kind,
}

/// Consumes one leading `#[...]` attribute if present. Returns true if consumed.
fn skip_attr(it: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) -> bool {
    if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
        it.next();
        match it.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket => {}
            other => panic!("malformed attribute in derive input: {other:?}"),
        }
        true
    } else {
        false
    }
}

fn parse_input(input: TokenStream) -> Input {
    let mut it = input.into_iter().peekable();
    let kind_kw = loop {
        if skip_attr(&mut it) {
            continue;
        }
        match it.next() {
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
                // visibility / `crate` qualifiers: skip.
            }
            Some(TokenTree::Group(_)) => {} // the `(crate)` of `pub(crate)`
            other => panic!("unsupported derive input near {other:?}"),
        }
    };
    let name = match it.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected type name, got {other:?}"),
    };
    let body = match it.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g.stream(),
        other => panic!(
            "serde shim derive supports only non-generic {{...}} types; `{name}` has {other:?}"
        ),
    };
    let kind = if kind_kw == "struct" {
        Kind::Struct(parse_named_fields(body))
    } else {
        Kind::Enum(parse_variants(body))
    };
    Input { name, kind }
}

/// Parses `name: Type, ...`, returning the field names (types are skipped with
/// angle-bracket depth tracking so `Vec<(String, Tensor)>` works).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut it = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        while skip_attr(&mut it) {}
        let name = loop {
            match it.next() {
                None => return fields,
                Some(TokenTree::Ident(id)) => {
                    let s = id.to_string();
                    if s != "pub" {
                        break s;
                    }
                }
                Some(TokenTree::Group(_)) => {} // the `(crate)` of `pub(crate)`
                other => panic!("unsupported field syntax near {other:?}"),
            }
        };
        match it.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, got {other:?}"),
        }
        fields.push(name);
        let mut angle_depth = 0i64;
        for tt in it.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                match p.as_char() {
                    '<' => angle_depth += 1,
                    '>' => angle_depth -= 1,
                    ',' if angle_depth == 0 => break,
                    _ => {}
                }
            }
        }
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut it = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        while skip_attr(&mut it) {}
        let name = match it.next() {
            None => return variants,
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("unsupported enum variant syntax near {other:?}"),
        };
        let fields = match it.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let inner = g.stream();
                it.next();
                Some(parse_named_fields(inner))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde shim derive does not support tuple variant `{name}`")
            }
            _ => None,
        };
        if matches!(it.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            it.next();
        }
        variants.push(Variant { name, fields });
    }
}

fn entries_literal(fields: &[String], access: impl Fn(&str) -> String) -> String {
    if fields.is_empty() {
        return "::serde::Value::Map(::std::vec::Vec::new())".to_string();
    }
    let items: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from(\"{f}\"), ::serde::Serialize::serialize({}))",
                access(f)
            )
        })
        .collect();
    format!("::serde::Value::Map(::std::vec::Vec::from([{}]))", items.join(", "))
}

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(fields) => entries_literal(fields, |f| format!("&self.{f}")),
        Kind::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|v| {
                    let vname = &v.name;
                    match &v.fields {
                        None => format!(
                            "{name}::{vname} => \
                             ::serde::Value::Str(::std::string::String::from(\"{vname}\")),"
                        ),
                        Some(fields) => {
                            let inner = entries_literal(fields, |f| f.to_string());
                            format!(
                                "{name}::{vname} {{ {} }} => ::serde::Value::Map(\
                                 ::std::vec::Vec::from([(::std::string::String::from(\
                                 \"{vname}\"), {inner})])),",
                                fields.join(", ")
                            )
                        }
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join("\n"))
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn struct_body(path: &str, fields: &[String], source: &str) -> String {
    let inits: Vec<String> = fields
        .iter()
        .map(|f| format!("{f}: ::serde::Deserialize::deserialize({source}.field(\"{f}\")?)?,"))
        .collect();
    format!("{path} {{ {} }}", inits.join("\n"))
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::Struct(fields) => {
            format!("::std::result::Result::Ok({})", struct_body("Self", fields, "v"))
        }
        Kind::Enum(variants) => {
            let unit_checks: Vec<String> = variants
                .iter()
                .filter(|v| v.fields.is_none())
                .map(|v| {
                    format!(
                        "if s == \"{0}\" {{ return ::std::result::Result::Ok({name}::{0}); }}",
                        v.name
                    )
                })
                .collect();
            let struct_checks: Vec<String> = variants
                .iter()
                .filter_map(|v| v.fields.as_ref().map(|f| (v, f)))
                .map(|(v, fields)| {
                    format!(
                        "if tag == \"{0}\" {{ return ::std::result::Result::Ok({1}); }}",
                        v.name,
                        struct_body(&format!("{name}::{}", v.name), fields, "inner")
                    )
                })
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Str(s) => {{\n\
                         {}\n\
                         ::std::result::Result::Err(::serde::Error(::std::format!(\n\
                             \"unknown variant `{{s}}` for {name}\")))\n\
                     }}\n\
                     ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                         let tag = entries[0].0.as_str();\n\
                         let inner = &entries[0].1;\n\
                         let _ = inner;\n\
                         {}\n\
                         ::std::result::Result::Err(::serde::Error(::std::format!(\n\
                             \"unknown variant `{{tag}}` for {name}\")))\n\
                     }}\n\
                     other => ::std::result::Result::Err(::serde::Error(::std::format!(\n\
                         \"unexpected value for {name}: {{other:?}}\"))),\n\
                 }}",
                unit_checks.join("\n"),
                struct_checks.join("\n"),
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(v: &::serde::Value) \
                 -> ::std::result::Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    )
}

/// Derives the shim `serde::Serialize` (value-model based).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed).parse().expect("serde shim: generated Serialize impl did not parse")
}

/// Derives the shim `serde::Deserialize` (value-model based).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed).parse().expect("serde shim: generated Deserialize impl did not parse")
}
