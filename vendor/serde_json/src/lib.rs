//! Offline shim for the subset of `serde_json` this workspace uses:
//! [`to_string`] and [`from_str`] over the `serde` shim's [`Value`] model.
//!
//! Numbers are written with Rust's shortest-roundtrip float formatting, so a
//! serialize → parse cycle reproduces every finite `f64` exactly. Non-finite
//! floats are written as `null` (matching real `serde_json`) and read back as
//! `NaN`.

use serde::{Deserialize, Error, Serialize, Value};

/// Serializes `value` as compact JSON text.
pub fn to_string<T: Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize());
    Ok(out)
}

/// Parses JSON text and deserializes it into `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    T::deserialize(&v)
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Num(n) => {
            if n.is_finite() {
                // `{}` on f64 is shortest-roundtrip; integral values print
                // without a fraction (`3`), which parses back to 3.0 fine.
                out.push_str(&format!("{n}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_ws();
        self.bytes.get(self.pos).copied().ok_or_else(|| Error("unexpected end of JSON".into()))
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        let got = self.peek()?;
        if got != b {
            return Err(Error(format!(
                "expected `{}` at byte {}, got `{}`",
                b as char, self.pos, got as char
            )));
        }
        self.pos += 1;
        Ok(())
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => self.literal("null", Value::Null),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'"' => Ok(Value::Str(self.parse_string()?)),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        c => {
                            return Err(Error(format!("expected `,` or `]`, got `{}`", c as char)))
                        }
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut entries = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.expect(b':')?;
                    entries.push((key, self.parse_value()?));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        c => {
                            return Err(Error(format!("expected `,` or `}}`, got `{}`", c as char)))
                        }
                    }
                }
            }
            _ => self.parse_number(),
        }
    }

    fn literal(&mut self, lit: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(value)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let b = *self.bytes.get(self.pos).ok_or_else(|| Error("unterminated string".into()))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(s),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error("invalid \\u escape".into()))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("invalid \\u escape".into()))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by this shim's writer;
                            // map lone surrogates to the replacement character.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        c => return Err(Error(format!("invalid escape `\\{}`", c as char))),
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at pos - 1.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && self.bytes[end] & 0xC0 == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error("invalid UTF-8 in string".into()))?;
                    s.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".into()))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| Error(format!("invalid number `{text}` at byte {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_structures() {
        let v = Value::Map(vec![
            ("name".into(), Value::Str("a \"quoted\"\nstring".into())),
            ("data".into(), Value::Seq(vec![Value::Num(1.5), Value::Num(-3.0), Value::Num(0.1)])),
            ("flag".into(), Value::Bool(true)),
            ("none".into(), Value::Null),
            ("empty".into(), Value::Seq(vec![])),
        ]);
        let text = {
            let mut s = String::new();
            write_value(&mut s, &v);
            s
        };
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        assert_eq!(p.parse_value().unwrap(), v);
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for x in [1.0 / 3.0, 1e-300, 123456789.123456, f64::MIN_POSITIVE, -0.0] {
            let text = format!("{x}");
            let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
            match p.parse_value().unwrap() {
                Value::Num(y) => assert_eq!(x.to_bits(), y.to_bits(), "{x} -> {y}"),
                other => panic!("expected number, got {other:?}"),
            }
        }
    }

    #[test]
    fn typed_roundtrip_via_traits() {
        let v: Vec<(String, f64)> = vec![("a".into(), 1.25), ("b".into(), -0.5)];
        let s = to_string(&v).unwrap();
        let back: Vec<(String, f64)> = from_str(&s).unwrap();
        assert_eq!(v, back);
    }
}
